"""Multi-worker shard-parallel partitioning: BSP on real OS processes.

The paper closes with "we aim to further improve the performance of HEP
by focusing on parallelism and distribution".
:mod:`repro.parallel.bsp_streaming` established the *semantics* of that
direction — a bulk-synchronous streaming schedule — in one process;
this module executes the same schedule on ``N`` worker **processes**,
each streaming its own shard files from a
:mod:`repro.stream.shard` manifest (or its own slice of a flat edge
file, or its own h2h spill segment), so wall-clock parallelism is real
rather than simulated.

Architecture
------------

* **Workers** (:func:`_worker_main`) each hold a private snapshot copy
  of the replica/load state.  Per superstep a worker reads the next
  ``batch`` edges of its stream, scores them against its snapshot with
  the *same kernel* the in-process schedule uses
  (:func:`~repro.parallel.kernel.score_batch_on_snapshot`), and ships
  the batch to the coordinator.
* **The coordinator** (:class:`StateService` inside
  :class:`WorkerPool`) owns the live state.  It merges worker batches
  in worker order — replica marks OR-ed, loads summed — exactly as
  :func:`~repro.parallel.bsp_streaming.bsp_hdrf_stream` specifies, then
  broadcasts the merged delta; every worker applies it and the barrier
  completes.
* **The capacity fast path**: when no partition can reach capacity
  within one superstep (:func:`~repro.parallel.kernel.
  superstep_is_safe` — a pure function of superstep-start loads, so
  workers and coordinator agree without communicating), placements are
  pure argmaxes and workers send only ``(eid, u, v) + p``.  Near the
  balance bound workers send full score matrices and the coordinator
  places edge by edge under the live capacity mask
  (:func:`~repro.parallel.kernel.place_batch_serialized`).  Both
  branches are bit-identical to the in-process schedule — the
  equivalence property ``tests/test_stream_workers.py`` pins.

Messages are framed with the spill file's frame encoding
(:data:`~repro.stream.spill` ``_FRAME``: ``<u4 payload_bytes, <u4
record_count``) and batch/delta records are the spill's int64 triples —
one wire format on disk and between processes.

Failure handling: a worker that dies mid-superstep (killed, OOM, or a
poisoned shard) surfaces as a single
:class:`~repro.errors.WorkerFailureError` naming the worker and its
shard/segment; the pool terminates and joins every remaining process
(no orphans) and per-run temp state is removed.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError, WorkerFailureError
from repro.obs.tracer import get_tracer, install_collecting_tracer
from repro.parallel.kernel import (
    FusedBatchScorer,
    apply_batch,
    apply_delta,
    contiguous_streams,
    place_batch_serialized,
    score_batch_on_snapshot,
    shard_round_robin_streams,
    superstep_is_safe,
)
from repro.parallel.shm import SharedState
from repro.partition.state import StreamingState
from repro.stream.pipeline import OutOfCoreHep
from repro.stream.reader import DEFAULT_CHUNK_SIZE
# (the counting/metrics front doors are imported lazily inside the
# drivers: repro.stream.parallel_scan builds on this module's pools)
from repro.stream.shard import (
    is_manifest_path,
    read_flat_edge_blocks,
    read_framed_edge_blocks,
    read_shard_manifest,
)

# One wire format: worker/coordinator messages reuse the spill file's
# frame struct and int64 triple records (see repro.stream.spill).
from repro.stream.spill import _FRAME, SpillFile, read_spill_chunks

__all__ = [
    "EdgeSegment",
    "BaseWorkerPool",
    "WorkerPool",
    "PersistentWorkerPool",
    "StateService",
    "MultiWorkerReport",
    "MultiWorkerResult",
    "MultiWorkerStreamingDriver",
    "MultiWorkerHep",
    "WorkerTimings",
    "plan_worker_segments",
    "run_bsp_shared",
    "split_spill_round_robin",
    "DEFAULT_WORKER_BATCH",
    "DEFAULT_WORKER_TIMEOUT",
]

#: per-worker edges scored per superstep (matches the in-process
#: ``bsp_hdrf_stream`` default, so ``--workers N`` compares one-to-one)
DEFAULT_WORKER_BATCH = 8

#: seconds the coordinator waits on a silent worker before declaring it hung
DEFAULT_WORKER_TIMEOUT = 120.0

_TRIPLE = np.dtype("<i8")

# message tags (one byte, prepended to the spill-style frame)
_MSG_BATCH = b"B"   # worker -> coord: triples + chosen partitions (fast path)
_MSG_SCORES = b"S"  # worker -> coord: triples + score matrix (near capacity)
_MSG_DONE = b"D"    # worker -> coord: stream exhausted (+ busy/wait/send f64s)
_MSG_ERROR = b"E"   # worker -> coord: pickled (type name, message)
_MSG_DELTA = b"M"   # coord -> worker: merged (u, v, p) triples
_MSG_TRACE = b"T"   # worker -> coord: pickled trace records (final message)

# warm-pool / shared-memory control frames (empty or tiny payloads)
_MSG_JOB = b"J"       # coord -> worker: pickled (handler, kwargs) job
_MSG_SHUTDOWN = b"Q"  # coord -> worker: leave the job loop, exit cleanly
_MSG_COMMIT = b"K"    # coord -> worker: barrier done; count = published index

#: layout of the timing payload a worker attaches to its DONE message
_DONE_TIMINGS = np.dtype("<f8")
_DONE_TIMING_FIELDS = 3  # busy_s, wait_s, send_s


@dataclass(frozen=True)
class EdgeSegment:
    """One contiguous run of globally-identified edges a worker streams.

    ``kind`` selects the on-disk decoding:

    * ``"flat"`` — ``count`` flat ``<u4`` pairs starting at edge
      ``start_edge`` of ``path`` (a whole uncompressed shard, or a
      virtual shard of a single flat edge file); edge ids are
      ``eid_start + position``,
    * ``"framed"`` — a whole zlib-framed shard file; edge ids are
      ``eid_start + position``,
    * ``"spill"`` — spill-format ``(u, v, eid)`` triples (h2h segments
      written by :func:`split_spill_round_robin`); edge ids travel in
      the records and ``eid_start`` is unused.
    """

    path: str
    count: int
    eid_start: int = 0
    kind: str = "flat"
    start_edge: int = 0
    compression: str | None = None

    def describe(self) -> str:
        """Short human-readable form used in failure messages."""
        if self.kind == "flat" and self.start_edge:
            return (
                f"{self.path}[{self.start_edge}:"
                f"{self.start_edge + self.count}]"
            )
        return self.path


def _iter_segment(
    segment: EdgeSegment, chunk_size: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(pairs, eids)`` blocks of one segment, bounded by chunks."""
    if segment.kind == "flat":
        eid = segment.eid_start
        for pairs in read_flat_edge_blocks(
            segment.path, segment.count, chunk_size, segment.start_edge
        ):
            eids = np.arange(eid, eid + pairs.shape[0], dtype=np.int64)
            eid += pairs.shape[0]
            yield pairs, eids
    elif segment.kind == "framed":
        eid = segment.eid_start
        for pairs in read_framed_edge_blocks(
            segment.path, segment.count, segment.compression
        ):
            eids = np.arange(eid, eid + pairs.shape[0], dtype=np.int64)
            eid += pairs.shape[0]
            yield pairs, eids
    elif segment.kind == "spill":
        yield from read_spill_chunks(
            segment.path, segment.count, segment.compression, chunk_size
        )
    else:
        raise ConfigurationError(f"unknown segment kind {segment.kind!r}")


def _iter_batches(
    segments: Sequence[EdgeSegment], batch: int, chunk_size: int
) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Re-slice a worker's segments into ``(us, vs, eids)`` batches.

    Exactly ``batch`` edges per emission (the final one may be short),
    crossing segment boundaries — the worker-process equivalent of
    ``streams[w][cursor : cursor + batch]`` in the in-process schedule.
    """
    pairs_buf: list[np.ndarray] = []
    eids_buf: list[np.ndarray] = []
    have = 0

    def _emit(count: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        nonlocal have
        taken_p: list[np.ndarray] = []
        taken_e: list[np.ndarray] = []
        need = count
        while need:
            head_p, head_e = pairs_buf[0], eids_buf[0]
            if head_p.shape[0] <= need:
                taken_p.append(head_p)
                taken_e.append(head_e)
                pairs_buf.pop(0)
                eids_buf.pop(0)
                need -= head_p.shape[0]
            else:
                taken_p.append(head_p[:need])
                taken_e.append(head_e[:need])
                pairs_buf[0] = head_p[need:]
                eids_buf[0] = head_e[need:]
                need = 0
        have -= count
        pairs = taken_p[0] if len(taken_p) == 1 else np.vstack(taken_p)
        eids = taken_e[0] if len(taken_e) == 1 else np.concatenate(taken_e)
        return pairs[:, 0], pairs[:, 1], eids

    for segment in segments:
        for pairs, eids in _iter_segment(segment, chunk_size):
            if pairs.shape[0] == 0:
                continue
            pairs_buf.append(np.asarray(pairs, dtype=np.int64))
            eids_buf.append(np.asarray(eids, dtype=np.int64))
            have += pairs.shape[0]
            while have >= batch:
                yield _emit(batch)
    if have:
        yield _emit(have)


# -- wire format ------------------------------------------------------------


def _pack_message(tag: bytes, count: int, *blobs: bytes) -> bytes:
    """Frame a message: tag byte + spill ``_FRAME`` header + payload."""
    payload = b"".join(blobs)
    return tag + _FRAME.pack(len(payload), count) + payload


def _unpack_message(blob: bytes) -> tuple[bytes, int, memoryview]:
    """Split a framed message into (tag, record count, payload view)."""
    tag = blob[:1]
    payload_bytes, count = _FRAME.unpack_from(blob, 1)
    payload = memoryview(blob)[1 + _FRAME.size :]
    if len(payload) != payload_bytes:
        raise WorkerFailureError(
            f"corrupt worker message: frame declares {payload_bytes} "
            f"payload bytes, got {len(payload)}"
        )
    return tag, count, payload


def _pack_triples(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> bytes:
    """Encode three parallel int64 columns as spill-style triples."""
    records = np.empty((a.shape[0], 3), dtype=_TRIPLE)
    records[:, 0] = a
    records[:, 1] = b
    records[:, 2] = c
    return records.tobytes()


def _unpack_triples(
    payload: memoryview, count: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode spill-style triples back into three int64 columns."""
    records = np.frombuffer(payload, dtype=_TRIPLE, count=count * 3)
    records = records.reshape(count, 3)
    return records[:, 0], records[:, 1], records[:, 2]


# -- worker process ---------------------------------------------------------


def _claim_pipe(worker_id: int, pipes: list):
    """Keep worker ``worker_id``'s child pipe end; close every other end.

    Closing the inherited ends that are not ours keeps EOF detection and
    fd hygiene intact after the fork.  Shared by every worker entry
    point (BSP streaming here, counting/metrics sweeps in
    :mod:`repro.stream.parallel_scan`).
    """
    conn = pipes[worker_id][1]
    for i, (parent_end, child_end) in enumerate(pipes):
        try:
            parent_end.close()
            if i != worker_id:
                child_end.close()
        except OSError:
            pass
    return conn


def _worker_main(
    worker_id: int,
    pipes: list,
    segments: Sequence[EdgeSegment],
    num_vertices: int,
    k: int,
    capacity: int,
    degrees: np.ndarray,
    init_replicas: np.ndarray | None,
    init_loads: np.ndarray | None,
    workers: int,
    batch: int,
    lam: float,
    eps: float,
    chunk_size: int,
    trace: bool = False,
) -> None:
    """Entry point of one worker process (module-level for spawnability).

    Holds a private snapshot of the replica/load state, streams its
    segments in ``batch``-edge steps, and participates in the BSP
    barrier protocol described in the module docstring.  Any exception
    is shipped to the coordinator as an ``ERROR`` message before a clean
    exit — the coordinator turns it into one
    :class:`~repro.errors.WorkerFailureError`.

    The worker always times itself (busy vs. barrier-wait vs. pipe-send
    seconds ride on the DONE payload so skew is visible without
    tracing); with ``trace`` it additionally records a ``worker_stream``
    span and ships its drained trace records as a final
    :data:`_MSG_TRACE` message for the coordinator to adopt.
    """
    conn = _claim_pipe(worker_id, pipes)
    tracer = install_collecting_tracer(trace)
    perf = time.perf_counter
    read_s = score_s = encode_s = send_s = wait_s = apply_s = 0.0
    edges = frames = piped = 0
    try:
        if init_replicas is None:
            replicas = np.zeros((k, num_vertices), dtype=bool)
        else:
            replicas = np.array(init_replicas, dtype=bool)
        if init_loads is None:
            loads = np.zeros(k, dtype=np.int64)
        else:
            loads = np.asarray(init_loads, dtype=np.int64).copy()
        degrees = np.asarray(degrees, dtype=np.int64)

        with tracer.span("worker_stream", worker=worker_id) as span:
            batches = _iter_batches(segments, batch, chunk_size)
            while True:
                t0 = perf()
                step = next(batches, None)
                read_s += perf() - t0
                if step is None:
                    break
                us, vs, eids = step
                t0 = perf()
                safe = superstep_is_safe(loads, workers, batch, capacity)
                scores = score_batch_on_snapshot(
                    replicas, loads, degrees, us, vs, lam, eps
                )
                score_s += perf() - t0
                t0 = perf()
                triples = _pack_triples(eids, us, vs)
                if safe:
                    ps = np.argmax(scores, axis=1)
                    message = _pack_message(
                        _MSG_BATCH, us.shape[0], triples,
                        ps.astype(_TRIPLE).tobytes(),
                    )
                else:
                    message = _pack_message(
                        _MSG_SCORES, us.shape[0], triples,
                        np.ascontiguousarray(scores, dtype="<f8").tobytes(),
                    )
                encode_s += perf() - t0
                t0 = perf()
                conn.send_bytes(message)
                send_s += perf() - t0
                t0 = perf()
                blob = conn.recv_bytes()
                wait_s += perf() - t0
                t0 = perf()
                tag, count, payload = _unpack_message(blob)
                if tag != _MSG_DELTA:
                    raise WorkerFailureError(
                        f"worker {worker_id}: expected a delta, got {tag!r}"
                    )
                dus, dvs, dps = _unpack_triples(payload, count)
                apply_delta(replicas, loads, dus, dvs, dps)
                apply_s += perf() - t0
                edges += us.shape[0]
                frames += 1
                piped += len(message) + len(blob)
            busy_s = read_s + score_s + apply_s
            for name, value in (
                ("busy_s", busy_s), ("read_s", read_s),
                ("score_s", score_s), ("apply_s", apply_s),
                ("encode_s", encode_s), ("send_s", send_s),
                ("wait_s", wait_s), ("edges_scanned", edges),
                ("frames_sent", frames), ("bytes_piped", piped),
            ):
                span.add(name, value)
        timings = np.array([busy_s, wait_s, send_s], dtype=_DONE_TIMINGS)
        conn.send_bytes(_pack_message(_MSG_DONE, 0, timings.tobytes()))
        if trace:
            conn.send_bytes(
                _pack_message(_MSG_TRACE, 0, pickle.dumps(tracer.drain()))
            )
    except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
        try:
            conn.send_bytes(
                _pack_message(
                    _MSG_ERROR, 0,
                    pickle.dumps((type(exc).__name__, str(exc))),
                )
            )
        except OSError:
            pass  # coordinator already gone; exit quietly
    finally:
        conn.close()


# -- warm workers (job loop) ------------------------------------------------


@dataclass(frozen=True)
class _JobContext:
    """What a job handler receives from the warm worker's job loop."""

    worker_id: int
    conn: object           # this worker's pipe end to the coordinator
    tracer: object         # the worker-process tracer (may be the null one)


def _job_worker_main(
    worker_id: int,
    pipes: list,
    segments: Sequence[EdgeSegment],
    trace: bool = False,
) -> None:
    """Entry point of one *warm* worker: run pickled jobs until shutdown.

    The pool spawns these once and then :meth:`PersistentWorkerPool.
    submit`\\ s any number of jobs — a job is a pickled ``(handler,
    kwargs)`` pair, and the handler owns whatever pipe protocol it needs
    (BSP supersteps, one-shot count/cover sweeps, ...).  ``segments`` is
    unused (jobs carry their own work); it exists so the spawn signature
    matches :class:`BaseWorkerPool`'s.

    After each successful job the worker ships its drained trace records
    (when tracing) so the coordinator can adopt them per job.  A failed
    job forwards one ``ERROR`` message and exits — protocol state after
    a mid-job exception is unknowable, so the process does not outlive
    it.
    """
    conn = _claim_pipe(worker_id, pipes)
    tracer = install_collecting_tracer(trace)
    context = _JobContext(worker_id, conn, tracer)
    try:
        while True:
            try:
                blob = conn.recv_bytes()
            except (EOFError, OSError):
                break  # coordinator dropped the pipe: quiet exit
            tag, _, payload = _unpack_message(blob)
            if tag == _MSG_SHUTDOWN:
                break
            if tag != _MSG_JOB:
                raise WorkerFailureError(
                    f"worker {worker_id}: expected a job frame, got {tag!r}"
                )
            handler, kwargs = pickle.loads(bytes(payload))
            handler(context, **kwargs)
            if trace:
                conn.send_bytes(
                    _pack_message(_MSG_TRACE, 0, pickle.dumps(tracer.drain()))
                )
    except BaseException as exc:  # noqa: BLE001 — forwarded, not hidden
        try:
            conn.send_bytes(
                _pack_message(
                    _MSG_ERROR, 0,
                    pickle.dumps((type(exc).__name__, str(exc))),
                )
            )
        except OSError:
            pass  # coordinator already gone; exit quietly
    finally:
        conn.close()


def _stream_shared_job(
    context: _JobContext,
    *,
    segments: Sequence[EdgeSegment],
    shm_name: str,
    num_vertices: int,
    k: int,
    capacity: int,
    workers: int,
    batch: int,
    lam: float,
    eps: float,
    chunk_size: int,
) -> None:
    """One worker's half of a shared-memory BSP run (see run_bsp_shared).

    Instead of holding a private snapshot copy and applying every merged
    delta (the pipe protocol), the worker maps the coordinator's
    :class:`~repro.parallel.shm.SharedState` segment and simply *reads*
    the published snapshot each superstep — the commit frame's count
    field names the buffer that is current.  Batches are written to this
    worker's scratch lane; the pipe carries only empty ``BATCH``/
    ``SCORES`` control frames.  Scoring runs through the fused
    :class:`~repro.parallel.kernel.FusedBatchScorer` (bitwise equal to
    the reference kernel).
    """
    conn = context.conn
    perf = time.perf_counter
    shared = None
    replicas = loads = degrees = None
    try:
        with context.tracer.span(
            "shm_attach", worker=context.worker_id
        ) as span:
            shared = SharedState.attach(
                shm_name, num_vertices, k, workers, batch
            )
            span.add("shm_bytes", shared.nbytes)
        scorer = FusedBatchScorer(k, batch, lam, eps)
        degrees = shared.degrees
        published = 0
        read_s = score_s = encode_s = send_s = wait_s = 0.0
        edges = frames = piped = 0
        with context.tracer.span(
            "worker_stream", worker=context.worker_id, protocol="shm"
        ) as span:
            batches = _iter_batches(segments, batch, chunk_size)
            while True:
                t0 = perf()
                step = next(batches, None)
                read_s += perf() - t0
                if step is None:
                    break
                us, vs, eids = step
                t0 = perf()
                replicas, loads = shared.snapshot(published)
                safe = superstep_is_safe(loads, workers, batch, capacity)
                scores = scorer.scores(replicas, loads, degrees, us, vs)
                score_s += perf() - t0
                # Lane writes play the pipe path's encode role.
                t0 = perf()
                if safe:
                    ps = np.argmax(scores, axis=1)
                    shared.write_batch(
                        context.worker_id, eids, us, vs, ps=ps
                    )
                    message = _pack_message(_MSG_BATCH, us.shape[0])
                else:
                    shared.write_batch(
                        context.worker_id, eids, us, vs, scores=scores
                    )
                    message = _pack_message(_MSG_SCORES, us.shape[0])
                encode_s += perf() - t0
                t0 = perf()
                conn.send_bytes(message)
                send_s += perf() - t0
                t0 = perf()
                blob = conn.recv_bytes()
                wait_s += perf() - t0
                tag, count, _ = _unpack_message(blob)
                if tag != _MSG_COMMIT:
                    raise WorkerFailureError(
                        f"worker {context.worker_id}: expected a commit, "
                        f"got {tag!r}"
                    )
                published = count
                edges += us.shape[0]
                frames += 1
                piped += len(message) + len(blob)
            busy_s = read_s + score_s
            for name, value in (
                ("busy_s", busy_s), ("read_s", read_s),
                ("score_s", score_s), ("encode_s", encode_s),
                ("send_s", send_s), ("wait_s", wait_s),
                ("edges_scanned", edges), ("frames_sent", frames),
                ("bytes_piped", piped),
            ):
                span.add(name, value)
        timings = np.array([busy_s, wait_s, send_s], dtype=_DONE_TIMINGS)
        conn.send_bytes(_pack_message(_MSG_DONE, 0, timings.tobytes()))
    finally:
        # Drop the snapshot views before unmapping so the segment closes
        # without pinned-buffer noise; the name is the coordinator's.
        replicas = loads = degrees = None  # noqa: F841
        if shared is not None:
            shared.close()


# -- coordinator ------------------------------------------------------------


@dataclass(frozen=True)
class WorkerTimings:
    """Where one BSP run's seconds went, per worker and on the coordinator.

    Workers always self-time (no ``--trace`` needed): ``busy_s`` is
    scoring + reading + delta-apply, ``wait_s`` is barrier time blocked
    on the coordinator's delta, ``send_s`` is pipe-send time.  The
    coordinator contributes its own split: time blocked waiting on
    worker frames, merge/commit time, and delta broadcast time.
    """

    busy_s: tuple[float, ...]
    wait_s: tuple[float, ...]
    send_s: tuple[float, ...]
    coordinator_recv_s: float
    coordinator_merge_s: float
    coordinator_send_s: float

    @property
    def max_busy_s(self) -> float:
        """Busy seconds of the slowest worker (the critical path)."""
        return max(self.busy_s, default=0.0)

    @property
    def mean_busy_s(self) -> float:
        """Mean busy seconds across workers."""
        return sum(self.busy_s) / len(self.busy_s) if self.busy_s else 0.0

    @property
    def skew(self) -> float:
        """Slowest worker over mean busy time (1.0 = perfectly even)."""
        mean = self.mean_busy_s
        return self.max_busy_s / mean if mean > 0 else 1.0


@dataclass(frozen=True)
class MultiWorkerReport:
    """What one multi-process BSP run did (the schedule's shape)."""

    workers: int
    batch: int
    supersteps: int
    edges_streamed: int
    fast_supersteps: int
    slow_supersteps: int
    timings: WorkerTimings | None = None

    @property
    def modeled_speedup(self) -> float:
        """Sequential edge-rounds over BSP supersteps (ideal network)."""
        if self.supersteps == 0:
            return 1.0
        return self.edges_streamed / (self.supersteps * self.batch)


class StateService:
    """Coordinator side of the shared state: live merge + protocol checks.

    Owns the single live :class:`~repro.partition.state.StreamingState`
    and applies every worker batch to it in worker order, exactly as the
    in-process schedule does.  Workers never mutate shared state — they
    propose placements (fast path) or scores (near capacity), and this
    service is the serialized owner that commits them.
    """

    def __init__(
        self,
        state: StreamingState,
        parts: np.ndarray,
        workers: int,
        batch: int,
    ) -> None:
        self.state = state
        self.parts = parts
        self.workers = workers
        self.batch = batch
        self.edges_streamed = 0

    def begin_superstep(self) -> bool:
        """Compute the fast-path predicate from superstep-start loads."""
        return superstep_is_safe(
            self.state.loads, self.workers, self.batch, self.state.capacity
        )

    def merge(
        self,
        worker_id: int,
        tag: bytes,
        count: int,
        payload: memoryview,
        safe: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode one pipe-protocol batch payload and commit it."""
        triple_bytes = count * 3 * _TRIPLE.itemsize
        eids, us, vs = _unpack_triples(payload[:triple_bytes], count)
        if tag == _MSG_BATCH:
            extra = np.frombuffer(
                payload[triple_bytes:], dtype=_TRIPLE, count=count
            )
        else:
            extra = np.frombuffer(
                payload[triple_bytes:], dtype="<f8", count=count * self.state.k
            ).reshape(count, self.state.k)
        return self.merge_arrays(worker_id, tag, eids, us, vs, extra, safe)

    def merge_arrays(
        self,
        worker_id: int,
        tag: bytes,
        eids: np.ndarray,
        us: np.ndarray,
        vs: np.ndarray,
        extra: np.ndarray,
        safe: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Commit one worker's batch; returns ``(us, vs, ps)`` for the delta.

        ``extra`` is the chosen-partition vector (:data:`_MSG_BATCH`) or
        the ``count × k`` score matrix (:data:`_MSG_SCORES`) — decoded
        pipe payloads and shared-memory lane views land here alike.
        """
        if tag == _MSG_BATCH:
            if not safe:
                raise WorkerFailureError(
                    f"protocol divergence: worker {worker_id} took the "
                    f"fast path in a near-capacity superstep"
                )
            ps = extra
            apply_batch(self.state, us, vs, ps)
        else:
            if safe:
                raise WorkerFailureError(
                    f"protocol divergence: worker {worker_id} sent scores "
                    f"in a safe superstep"
                )
            ps = place_batch_serialized(self.state, us, vs, extra)
        self.parts[eids] = ps
        self.edges_streamed += eids.shape[0]
        return us, vs, ps


#: every started, not-yet-closed pool, for service-level health checks
#: (weak references: a pool dropped without close() must not pin itself)
_LIVE_POOLS: "weakref.WeakSet[BaseWorkerPool]" = weakref.WeakSet()


def live_pool_health() -> list[dict]:
    """Health snapshots of every started, not-yet-closed worker pool.

    The serve layer's ``/healthz`` endpoint surfaces this: a healthy
    idle service reports no live pools; during a run it reports the
    active pool with every worker alive.
    """
    return [pool.health() for pool in list(_LIVE_POOLS)]


class BaseWorkerPool:
    """Lifecycle shared by every segment-sweeping worker-process pool.

    Owns the processes, pipes, liveness-watching receive loop and the
    single-:class:`~repro.errors.WorkerFailureError` failure surface
    (terminate + join everything, no orphans).  Subclasses provide the
    module-level worker entry point (``_worker_target``) and the extra
    spawn arguments (:meth:`_spawn_args`); what flows over the pipes is
    theirs to define.  :class:`WorkerPool` drives the BSP partitioning
    protocol on top; the counting/metrics pools in
    :mod:`repro.stream.parallel_scan` run one-shot map-reduce sweeps.

    Parameters
    ----------
    worker_segments:
        One list of :class:`EdgeSegment` per worker (may be empty — the
        worker reports its empty result immediately).
    mp_context:
        ``multiprocessing`` start method; default prefers ``fork``
        (cheap, inherits the init arrays) and falls back to ``spawn``.
    timeout:
        Seconds the coordinator waits on a silent worker before raising
        :class:`~repro.errors.WorkerFailureError`.
    """

    #: module-level worker entry point, set by subclasses via
    #: ``staticmethod(...)`` so it stays spawn-picklable
    _worker_target = None

    def __init__(
        self,
        worker_segments: Sequence[Sequence[EdgeSegment]],
        mp_context: str | None = None,
        timeout: float = DEFAULT_WORKER_TIMEOUT,
    ) -> None:
        if not worker_segments:
            raise ConfigurationError("worker_segments must name >= 1 worker")
        self.worker_segments = [list(segs) for segs in worker_segments]
        self.workers = len(self.worker_segments)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context
        self.timeout = float(timeout)
        self._procs: list = []
        self._conns: list = []
        # Always-on receive accounting (coordinator-side): seconds spent
        # blocked on worker frames, and frames/bytes drained.
        self.recv_wait_s = 0.0
        self.frames_recv = 0
        self.bytes_recv = 0
        self._trace_workers = False

    def _spawn_args(self, worker_id: int) -> tuple:
        """Extra positional args for ``_worker_target`` after the segments."""
        raise NotImplementedError

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Fork the workers; each gets its segments and the spawn args.

        When the process-global tracer is live the spawn is wrapped in a
        ``pool_spawn`` span and every worker gets a trailing trace flag,
        telling it to collect spans and ship them back as its final
        message (see :meth:`collect_worker_spans`).
        """
        if self._procs:
            raise ConfigurationError(
                f"{type(self).__name__} already started"
            )
        tracer = get_tracer()
        self._trace_workers = bool(tracer.enabled)
        ctx = multiprocessing.get_context(self.mp_context)
        with tracer.span(
            "pool_spawn", workers=self.workers, pool=type(self).__name__,
            mp_context=self.mp_context,
        ):
            pipes = [ctx.Pipe(duplex=True) for _ in range(self.workers)]
            try:
                for w in range(self.workers):
                    proc = ctx.Process(
                        target=type(self)._worker_target,
                        args=(
                            w,
                            pipes,
                            self.worker_segments[w],
                            *self._spawn_args(w),
                            self._trace_workers,
                        ),
                        name=f"repro-worker-{w}",
                        daemon=True,
                    )
                    proc.start()
                    self._procs.append(proc)
            except BaseException:
                # A failed spawn must not leak processes already forked.
                self.close()
                raise
            for parent_end, child_end in pipes:
                child_end.close()
                self._conns.append(parent_end)
        _LIVE_POOLS.add(self)

    @property
    def pids(self) -> list[int]:
        """Worker process ids (for monitoring and failure injection)."""
        return [proc.pid for proc in self._procs]

    def health(self) -> dict:
        """Liveness snapshot: pool type, worker count, per-worker state.

        ``healthy`` is true iff every spawned worker process is still
        alive.  A never-started or closed pool reports zero workers and
        counts as healthy (nothing to be dead).
        """
        alive = [proc.is_alive() for proc in self._procs]
        return {
            "pool": type(self).__name__,
            "workers": len(self._procs),
            "alive": alive,
            "pids": [proc.pid for proc in self._procs],
            "healthy": all(alive),
        }

    def close(self) -> None:
        """Terminate and join every worker; close every pipe. Idempotent."""
        _LIVE_POOLS.discard(self)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._conns = []
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join()
        self._procs = []

    def __enter__(self) -> "BaseWorkerPool":
        """Start the pool on entry."""
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Tear the pool down (terminate/join/close) on exit."""
        self.close()

    # -- protocol plumbing --------------------------------------------------

    def _describe_worker(self, w: int) -> str:
        segments = self.worker_segments[w]
        if not segments:
            return f"worker {w} (no segments)"
        names = ", ".join(seg.describe() for seg in segments)
        return f"worker {w} (segments: {names})"

    def _worker_died(self, w: int) -> WorkerFailureError:
        exitcode = self._procs[w].exitcode
        return WorkerFailureError(
            f"{self._describe_worker(w)} died mid-sweep "
            f"(exit code {exitcode}) before finishing its stream"
        )

    def _recv(self, w: int) -> bytes:
        """Receive one message from worker ``w``, watching its liveness.

        Accounts the blocked time and drained frames/bytes into
        :attr:`recv_wait_s` / :attr:`frames_recv` / :attr:`bytes_recv`.
        """
        conn = self._conns[w]
        proc = self._procs[w]
        started = time.perf_counter()
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                if conn.poll(0.05):
                    return self._account_recv(conn.recv_bytes(), started)
            except (EOFError, OSError):
                raise self._worker_died(w) from None
            if not proc.is_alive():
                # Drain a final message that raced with the exit.
                try:
                    if conn.poll(0.25):
                        return self._account_recv(conn.recv_bytes(), started)
                except (EOFError, OSError):
                    pass
                raise self._worker_died(w)
            if time.monotonic() > deadline:
                raise WorkerFailureError(
                    f"{self._describe_worker(w)} sent nothing for "
                    f"{self.timeout:.0f}s; presumed hung"
                )

    def _account_recv(self, blob: bytes, started: float) -> bytes:
        """Fold one received frame into the receive counters."""
        self.recv_wait_s += time.perf_counter() - started
        self.frames_recv += 1
        self.bytes_recv += len(blob)
        return blob

    def collect_worker_spans(self, **attrs) -> None:
        """Adopt each worker's trace records (its final pipe message).

        No-op unless :meth:`start` armed tracing.  Workers send their
        drained span records as one :data:`_MSG_TRACE` message *after*
        their last protocol message, so this must run after the pool's
        protocol has fully completed.  Adopted roots are re-parented
        under the caller's current span and tagged with ``attrs``.
        """
        if not self._trace_workers:
            return
        tracer = get_tracer()
        for w in range(self.workers):
            tag, _, payload = _unpack_message(self._recv(w))
            if tag == _MSG_ERROR:
                self._raise_worker_error(w, payload)
            if tag != _MSG_TRACE:
                raise WorkerFailureError(
                    f"{self._describe_worker(w)} sent {tag!r} where its "
                    f"trace records were expected"
                )
            tracer.adopt(pickle.loads(bytes(payload)), worker=w, **attrs)

    def _raise_worker_error(self, w: int, payload: memoryview) -> None:
        try:
            exc_type, message = pickle.loads(bytes(payload))
        except Exception:  # noqa: BLE001 — corrupt error payloads
            exc_type, message = "unknown error", "<undecodable payload>"
        raise WorkerFailureError(
            f"{self._describe_worker(w)} failed: {exc_type}: {message}"
        )


class WorkerPool(BaseWorkerPool):
    """N worker processes + pipes driving one BSP run (context manager).

    Parameters
    ----------
    worker_segments:
        One list of :class:`EdgeSegment` per worker (may be empty — the
        worker reports DONE immediately).
    state:
        The coordinator's live state; its replica/load arrays (and
        degrees/capacity) seed every worker's snapshot.
    batch:
        Edges each worker scores per superstep.
    chunk_size:
        I/O block size for the workers' segment readers.
    mp_context:
        ``multiprocessing`` start method; default prefers ``fork``
        (cheap, inherits the init arrays) and falls back to ``spawn``.
    timeout:
        Seconds the coordinator waits on a silent worker before raising
        :class:`~repro.errors.WorkerFailureError`.
    """

    _worker_target = staticmethod(_worker_main)

    def __init__(
        self,
        worker_segments: Sequence[Sequence[EdgeSegment]],
        state: StreamingState,
        batch: int = DEFAULT_WORKER_BATCH,
        lam: float = 1.1,
        eps: float = 1.0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        mp_context: str | None = None,
        timeout: float = DEFAULT_WORKER_TIMEOUT,
    ) -> None:
        super().__init__(worker_segments, mp_context=mp_context, timeout=timeout)
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        self.state = state
        self.batch = int(batch)
        self.lam = lam
        self.eps = eps
        self.chunk_size = int(chunk_size)

    def _spawn_args(self, worker_id: int) -> tuple:
        """Snapshot seed + schedule parameters for one BSP worker."""
        state = self.state
        return (
            state.num_vertices,
            state.k,
            state.capacity,
            state.degrees,
            state.replicas,
            state.loads,
            self.workers,
            self.batch,
            self.lam,
            self.eps,
            self.chunk_size,
        )

    # -- protocol -----------------------------------------------------------

    def run(self, parts: np.ndarray) -> MultiWorkerReport:
        """Drive supersteps until every worker reports DONE.

        Mutates ``self.state`` (the live state) and ``parts`` exactly
        like the in-process ``bsp_hdrf_stream`` with the same
        workers/batch/streams.  Any worker failure raises one
        :class:`~repro.errors.WorkerFailureError` after the pool is
        cleaned up by the surrounding context manager.
        """
        if not self._procs:
            raise ConfigurationError("WorkerPool.run() before start()")
        perf = time.perf_counter
        service = StateService(self.state, parts, self.workers, self.batch)
        active = list(range(self.workers))
        supersteps = 0
        fast = 0
        slow = 0
        merge_s = encode_s = send_s = 0.0
        frames_sent = 0
        bytes_sent = 0
        worker_timings: dict[int, tuple[float, float, float]] = {}
        with get_tracer().span(
            "pool_run", pool="bsp", workers=self.workers, batch=self.batch,
        ) as span:
            while active:
                safe = service.begin_superstep()
                messages = []
                for w in active:
                    tag, count, payload = _unpack_message(self._recv(w))
                    messages.append((w, tag, count, payload))
                delta_us: list[np.ndarray] = []
                delta_vs: list[np.ndarray] = []
                delta_ps: list[np.ndarray] = []
                senders: list[int] = []
                for w, tag, count, payload in messages:
                    if tag == _MSG_DONE:
                        active.remove(w)
                        expected = _DONE_TIMING_FIELDS * _DONE_TIMINGS.itemsize
                        if len(payload) >= expected:
                            busy, wait, send = np.frombuffer(
                                payload, dtype=_DONE_TIMINGS,
                                count=_DONE_TIMING_FIELDS,
                            )
                            worker_timings[w] = (
                                float(busy), float(wait), float(send)
                            )
                        continue
                    if tag == _MSG_ERROR:
                        self._raise_worker_error(w, payload)
                    t0 = perf()
                    us, vs, ps = service.merge(w, tag, count, payload, safe)
                    merge_s += perf() - t0
                    delta_us.append(us)
                    delta_vs.append(vs)
                    delta_ps.append(ps)
                    senders.append(w)
                if not senders:
                    continue
                supersteps += 1
                if safe:
                    fast += 1
                else:
                    slow += 1
                t0 = perf()
                delta = _pack_message(
                    _MSG_DELTA,
                    sum(u.shape[0] for u in delta_us),
                    _pack_triples(
                        np.concatenate(delta_us),
                        np.concatenate(delta_vs),
                        np.concatenate(delta_ps),
                    ),
                )
                encode_s += perf() - t0
                t0 = perf()
                for w in senders:
                    try:
                        self._conns[w].send_bytes(delta)
                    except (BrokenPipeError, OSError):
                        raise self._worker_died(w) from None
                send_s += perf() - t0
                frames_sent += len(senders)
                bytes_sent += len(delta) * len(senders)
            self.collect_worker_spans()
            for name, value in (
                ("recv_wait_s", self.recv_wait_s), ("merge_s", merge_s),
                ("encode_s", encode_s), ("send_s", send_s),
                ("supersteps", supersteps),
                ("frames_sent", self.frames_recv + frames_sent),
                ("bytes_piped", self.bytes_recv + bytes_sent),
            ):
                span.add(name, value)
        timings = WorkerTimings(
            busy_s=tuple(
                worker_timings.get(w, (0.0, 0.0, 0.0))[0]
                for w in range(self.workers)
            ),
            wait_s=tuple(
                worker_timings.get(w, (0.0, 0.0, 0.0))[1]
                for w in range(self.workers)
            ),
            send_s=tuple(
                worker_timings.get(w, (0.0, 0.0, 0.0))[2]
                for w in range(self.workers)
            ),
            coordinator_recv_s=self.recv_wait_s,
            coordinator_merge_s=merge_s,
            coordinator_send_s=send_s,
        )
        return MultiWorkerReport(
            workers=self.workers,
            batch=self.batch,
            supersteps=supersteps,
            edges_streamed=service.edges_streamed,
            fast_supersteps=fast,
            slow_supersteps=slow,
            timings=timings,
        )


class PersistentWorkerPool(BaseWorkerPool):
    """Warm worker processes: spawn once, run many jobs, shut down once.

    Where :class:`WorkerPool` forks per BSP run, this pool keeps its
    processes alive across jobs — the counting pass, the streaming
    phase, and the metrics pass of one partition run (or many runs) all
    reuse the same workers, so the spawn tax is paid once.  A job is a
    module-level handler plus kwargs, pickled into one
    :data:`_MSG_JOB` frame; the handler owns the pipe protocol from
    there (:func:`_stream_shared_job` drives BSP supersteps, the
    handlers in :mod:`repro.stream.parallel_scan` run one-shot sweeps).

    ``timeout`` is per received frame, exactly as in the one-shot
    pools; callers running long uninterrupted sweeps (the scan front
    doors) temporarily widen it around their job.
    """

    _worker_target = staticmethod(_job_worker_main)

    def __init__(
        self,
        workers: int,
        mp_context: str | None = None,
        timeout: float = DEFAULT_WORKER_TIMEOUT,
    ) -> None:
        """Size the pool; :meth:`start` spawns the processes."""
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        super().__init__(
            [[] for _ in range(int(workers))],
            mp_context=mp_context,
            timeout=timeout,
        )

    def _spawn_args(self, worker_id: int) -> tuple:
        """Warm workers take no spawn args — jobs carry everything."""
        return ()

    def submit(
        self,
        handler,
        kwargs_per_worker: Sequence[dict],
        segments: "Sequence[Sequence[EdgeSegment]] | None" = None,
    ) -> None:
        """Send one ``(handler, kwargs)`` job to every worker.

        ``handler`` must be a module-level callable (pickled by
        reference) taking a :class:`_JobContext` plus its kwargs.
        ``segments`` optionally records what each worker is sweeping so
        failure messages can name it.
        """
        if not self._procs:
            raise ConfigurationError("submit() before start()")
        if len(kwargs_per_worker) != self.workers:
            raise ConfigurationError(
                f"submit() needs kwargs for all {self.workers} workers, "
                f"got {len(kwargs_per_worker)}"
            )
        if segments is not None:
            self.worker_segments = [list(segs) for segs in segments]
        for w, kwargs in enumerate(kwargs_per_worker):
            frame = _pack_message(
                _MSG_JOB, 0, pickle.dumps((handler, kwargs))
            )
            try:
                self._conns[w].send_bytes(frame)
            except (BrokenPipeError, OSError):
                raise self._worker_died(w) from None

    def shutdown(self) -> None:
        """Ask the job loops to exit, join briefly, then tear down.

        Idempotent, and safe after failures: workers that already died
        are skipped and :meth:`BaseWorkerPool.close` terminates any
        straggler.  The graceful drain (send ``SHUTDOWN``, join) runs
        under a ``finally``-guarded :meth:`close`, so an interrupt
        delivered mid-drain still terminates every process.
        """
        try:
            for conn in self._conns:
                try:
                    conn.send_bytes(_pack_message(_MSG_SHUTDOWN, 0))
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=5.0)
        finally:
            self.close()


def run_bsp_shared(
    pool: PersistentWorkerPool,
    segments: Sequence[Sequence[EdgeSegment]],
    state: StreamingState,
    parts: np.ndarray,
    batch: int = DEFAULT_WORKER_BATCH,
    lam: float = 1.1,
    eps: float = 1.0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> MultiWorkerReport:
    """Drive one shared-memory BSP streaming run on a warm pool.

    The shared-state sibling of :meth:`WorkerPool.run`, bit-identical to
    it (and to the in-process ``bsp_hdrf_stream``) for the same
    ``segments``/``batch``: the schedule is ``len(segments)`` streams
    wide regardless of pool size (spare workers get empty segment lists
    and report DONE immediately), merges happen in worker order, and the
    fast/slow path split is the same deterministic predicate.

    What changes is the data plane: worker batches land in per-worker
    scratch lanes of one :class:`~repro.parallel.shm.SharedState`
    segment and the merged delta is *not* broadcast — the coordinator
    folds it into the double-buffered snapshot
    (:meth:`~repro.parallel.shm.SharedState.commit`) and releases the
    workers with an empty ``COMMIT`` frame naming the published buffer.
    Workers therefore skip the pipe path's per-worker delta apply
    entirely, and pipes carry only control frames.

    Mutates ``state`` and ``parts``; the segment is closed and unlinked
    on every exit path.  Worker failures surface as one
    :class:`~repro.errors.WorkerFailureError` (the caller owns pool
    teardown, normally via :meth:`PersistentWorkerPool.shutdown`).
    """
    if batch < 1:
        raise ConfigurationError(f"batch must be >= 1, got {batch}")
    workers = len(segments)
    if workers < 1:
        raise ConfigurationError("run_bsp_shared needs >= 1 segment list")
    if workers > pool.workers:
        raise ConfigurationError(
            f"schedule is {workers} streams wide but the pool has only "
            f"{pool.workers} workers"
        )
    padded = [list(segs) for segs in segments]
    padded += [[] for _ in range(pool.workers - workers)]
    tracer = get_tracer()
    perf = time.perf_counter
    service = StateService(state, parts, workers, batch)
    supersteps = fast = slow = 0
    merge_s = commit_s = encode_s = send_s = 0.0
    frames_sent = bytes_sent = 0
    first_commit_at = 0.0
    worker_timings: dict[int, tuple[float, float, float]] = {}
    # The pool's receive counters are cumulative across jobs; report
    # this run's deltas.
    recv0 = pool.recv_wait_s
    frames0 = pool.frames_recv
    bytes0 = pool.bytes_recv
    # The segment is created *inside* the try so an interrupt landing
    # anywhere after creation — including between create() and the
    # superstep loop — still reaches the finally-unlink below.
    shared = None
    try:
        with tracer.span(
            "shm_attach", side="coordinator", workers=workers, batch=batch
        ) as span:
            shared = SharedState.create(
                state.num_vertices, state.k, workers, batch,
                state.degrees, state.replicas, state.loads,
            )
            span.add("shm_bytes", shared.nbytes)
        with tracer.span(
            "pool_run", pool="bsp-shm", workers=workers, batch=batch,
        ) as span:
            pool.submit(
                _stream_shared_job,
                [
                    dict(
                        segments=padded[w],
                        shm_name=shared.name,
                        num_vertices=state.num_vertices,
                        k=state.k,
                        capacity=state.capacity,
                        workers=workers,
                        batch=batch,
                        lam=lam,
                        eps=eps,
                        chunk_size=chunk_size,
                    )
                    for w in range(pool.workers)
                ],
                segments=padded,
            )
            active = list(range(pool.workers))
            while active:
                safe = service.begin_superstep()
                messages = []
                for w in active:
                    tag, count, payload = _unpack_message(pool._recv(w))
                    messages.append((w, tag, count, payload))
                delta_us: list[np.ndarray] = []
                delta_vs: list[np.ndarray] = []
                delta_ps: list[np.ndarray] = []
                senders: list[int] = []
                for w, tag, count, payload in messages:
                    if tag == _MSG_DONE:
                        active.remove(w)
                        expected = (
                            _DONE_TIMING_FIELDS * _DONE_TIMINGS.itemsize
                        )
                        if len(payload) >= expected:
                            busy, wait, send = np.frombuffer(
                                payload, dtype=_DONE_TIMINGS,
                                count=_DONE_TIMING_FIELDS,
                            )
                            worker_timings[w] = (
                                float(busy), float(wait), float(send)
                            )
                        continue
                    if tag == _MSG_ERROR:
                        pool._raise_worker_error(w, payload)
                    t0 = perf()
                    eids, us, vs, extra = shared.read_batch(
                        w, count, slow=tag == _MSG_SCORES
                    )
                    us, vs, ps = service.merge_arrays(
                        w, tag, eids, us, vs, extra, safe
                    )
                    merge_s += perf() - t0
                    delta_us.append(us)
                    delta_vs.append(vs)
                    delta_ps.append(ps)
                    senders.append(w)
                if not senders:
                    continue
                supersteps += 1
                if safe:
                    fast += 1
                else:
                    slow += 1
                if not first_commit_at:
                    first_commit_at = time.time()
                t0 = perf()
                # np.concatenate always copies, so the commit never
                # holds a lane view across the frame that lets workers
                # overwrite their lanes.
                published = shared.commit(
                    np.concatenate(delta_us),
                    np.concatenate(delta_vs),
                    np.concatenate(delta_ps),
                )
                commit_s += perf() - t0
                t0 = perf()
                frame = _pack_message(_MSG_COMMIT, published)
                encode_s += perf() - t0
                t0 = perf()
                for w in senders:
                    try:
                        pool._conns[w].send_bytes(frame)
                    except (BrokenPipeError, OSError):
                        raise pool._worker_died(w) from None
                send_s += perf() - t0
                frames_sent += len(senders)
                bytes_sent += len(frame) * len(senders)
            pool.collect_worker_spans()
            if tracer.enabled and supersteps:
                # One aggregate span (a per-superstep span per commit
                # would dwarf the trace); dur_s is the measured total.
                tracer.adopt([{
                    "type": "span", "id": 0, "parent": None,
                    "name": "superstep_commit", "start": first_commit_at,
                    "dur_s": commit_s,
                    "attrs": {"side": "coordinator"},
                    "counters": {"supersteps": supersteps},
                }])
            for name, value in (
                ("recv_wait_s", pool.recv_wait_s - recv0),
                ("merge_s", merge_s), ("commit_s", commit_s),
                ("encode_s", encode_s), ("send_s", send_s),
                ("supersteps", supersteps),
                ("frames_sent", pool.frames_recv - frames0 + frames_sent),
                ("bytes_piped", pool.bytes_recv - bytes0 + bytes_sent),
            ):
                span.add(name, value)
    finally:
        # On the failure path the propagating traceback pins this frame;
        # null the lane views it may hold (the per-worker reads and the
        # fast-path delta lists) so the segment can unmap.
        eids = us = vs = extra = None  # noqa: F841
        delta_us = delta_vs = delta_ps = None  # noqa: F841
        if shared is not None:
            shared.close()
            shared.unlink()
    timings = WorkerTimings(
        busy_s=tuple(
            worker_timings.get(w, (0.0, 0.0, 0.0))[0]
            for w in range(workers)
        ),
        wait_s=tuple(
            worker_timings.get(w, (0.0, 0.0, 0.0))[1]
            for w in range(workers)
        ),
        send_s=tuple(
            worker_timings.get(w, (0.0, 0.0, 0.0))[2]
            for w in range(workers)
        ),
        coordinator_recv_s=pool.recv_wait_s - recv0,
        coordinator_merge_s=merge_s + commit_s,
        coordinator_send_s=send_s,
    )
    return MultiWorkerReport(
        workers=workers,
        batch=batch,
        supersteps=supersteps,
        edges_streamed=service.edges_streamed,
        fast_supersteps=fast,
        slow_supersteps=slow,
        timings=timings,
    )


# -- planning ---------------------------------------------------------------


def plan_worker_segments(
    source: "str | os.PathLike",
    workers: int,
) -> tuple[list[list[EdgeSegment]], list[np.ndarray], int, int | None]:
    """Assign a sharded manifest (or flat edge file) to ``workers`` workers.

    Returns ``(segments_per_worker, eid_streams, num_edges,
    num_vertices)``.  For a manifest, shards are dealt round-robin —
    worker ``w`` streams shards ``w, w+N, ...`` in manifest order, so
    every shard file is read by exactly one process.  A flat binary
    edge file is *virtually* sharded into one contiguous range per
    worker.  ``eid_streams`` are the same ownership expressed as global
    edge-id arrays — feed them to
    :func:`~repro.parallel.bsp_streaming.bsp_hdrf_stream` to run the
    identical schedule in process (the equivalence oracle).
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    path = Path(source)
    if not path.exists():
        raise ConfigurationError(f"{path}: no such edge file or manifest")
    if is_manifest_path(path):
        manifest = read_shard_manifest(path)
        offsets = [0]
        for count in manifest.shard_edges:
            offsets.append(offsets[-1] + count)
        kind = "flat" if manifest.compression is None else "framed"
        segments: list[list[EdgeSegment]] = []
        for w in range(workers):
            segs = [
                EdgeSegment(
                    path=str(manifest.shard_paths[i]),
                    count=manifest.shard_edges[i],
                    eid_start=offsets[i],
                    kind=kind,
                    compression=manifest.compression,
                )
                for i in range(w, manifest.num_shards, workers)
            ]
            segments.append(segs)
        streams = shard_round_robin_streams(manifest.shard_edges, workers)
        return segments, streams, manifest.num_edges, manifest.num_vertices
    from repro.stream.reader import BINARY_SUFFIXES, require_edge_format

    if path.suffix not in BINARY_SUFFIXES:
        raise ConfigurationError(
            f"{path}: multi-worker partitioning streams shard manifests "
            f"or flat binary edge files ({', '.join(BINARY_SUFFIXES)}); "
            f"export one with 'datasets --export' or 'extsort --shards'"
        )
    require_edge_format(path, "binary")
    size = path.stat().st_size
    if size % 8 != 0:
        raise ConfigurationError(
            f"{path}: binary edge list length {size} is not a multiple of 8"
        )
    num_edges = size // 8
    streams = contiguous_streams(num_edges, workers)
    segments = [
        [
            EdgeSegment(
                path=str(path),
                count=int(stream.size),
                eid_start=int(stream[0]) if stream.size else 0,
                kind="flat",
                start_edge=int(stream[0]) if stream.size else 0,
            )
        ]
        if stream.size
        else []
        for stream in streams
    ]
    return segments, streams, num_edges, None


def split_spill_round_robin(
    spill: SpillFile,
    workers: int,
    out_dir: "str | os.PathLike",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    compression: str | None = None,
) -> list[list[EdgeSegment]]:
    """Deal a spill file's records round-robin into per-worker segments.

    Record ``j`` of the spill stream goes to worker ``j mod N`` — the
    exact ownership :func:`~repro.parallel.kernel.round_robin_streams`
    describes, so the multi-process phase two matches the in-process
    ``bsp_hdrf_stream(workers=N)`` schedule bit for bit.  Segment files
    land in ``out_dir`` (caller-owned temp state).
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    out_dir = Path(out_dir)
    writers = [
        SpillFile(
            path=out_dir / f"h2h-worker-{w:02d}.spill",
            delete=False,
            compression=compression,
        )
        for w in range(workers)
    ]
    try:
        position = 0
        for pairs, eids in spill.chunks(chunk_size):
            owner = (position + np.arange(pairs.shape[0])) % workers
            for w in range(workers):
                mask = owner == w
                if mask.any():
                    writers[w].append(pairs[mask], eids[mask])
            position += pairs.shape[0]
        for writer in writers:
            writer.sync()
        return [
            [
                EdgeSegment(
                    path=str(writer.path),
                    count=len(writer),
                    kind="spill",
                    compression=compression,
                )
            ]
            if len(writer)
            else []
            for writer in writers
        ]
    finally:
        for writer in writers:
            writer.close()


# -- drivers ----------------------------------------------------------------


@dataclass
class MultiWorkerResult:
    """Outcome of one multi-process out-of-core run (no Graph in RAM)."""

    algorithm: str
    parts: np.ndarray          # (m,) int32 per-edge partition ids
    k: int
    num_vertices: int
    num_edges: int
    chunk_size: int
    report: MultiWorkerReport
    loads: np.ndarray          # (k,) final per-partition edge counts
    replication_factor: float
    edge_balance: float
    runtime_s: float

    @property
    def num_unassigned(self) -> int:
        """Number of edges left without a partition (should be zero)."""
        return int((self.parts < 0).sum())


class MultiWorkerStreamingDriver:
    """Standalone informed HDRF over shards, one OS process per worker.

    The multi-process sibling of
    :class:`~repro.stream.driver.StreamingPartitionerDriver`'s HDRF
    adapter: a counting pass establishes exact degrees, then ``workers``
    processes stream their shard assignment under the BSP schedule.
    ``workers=1, batch=1`` reproduces sequential informed HDRF exactly;
    any configuration is bit-identical to the in-process
    ``bsp_hdrf_stream`` with the same workers/batch and the streams
    :func:`plan_worker_segments` reports.
    """

    def __init__(
        self,
        workers: int = 2,
        batch: int = DEFAULT_WORKER_BATCH,
        alpha: float = 1.0,
        lam: float = 1.1,
        eps: float = 1.0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        prefetch: int = 0,
        mp_context: str | None = None,
        timeout: float = DEFAULT_WORKER_TIMEOUT,
        metrics_workers: int | None = None,
        shared_memory: bool = True,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        self.workers = int(workers)
        self.batch = int(batch)
        self.alpha = alpha
        self.lam = lam
        self.eps = eps
        self.chunk_size = int(chunk_size)
        self.prefetch = int(prefetch)
        self.mp_context = mp_context
        self.timeout = timeout
        # The counting/metrics sweeps default to the same parallelism as
        # the streaming phase (bit-identical either way).
        self.metrics_workers = (
            self.workers if metrics_workers is None else int(metrics_workers)
        )
        # Shared-memory state + one warm pool for every pass (default);
        # False falls back to the per-run pipe protocol.
        self.shared_memory = bool(shared_memory)
        self.last_result: MultiWorkerResult | None = None
        self.name = f"HDRF-mw{workers}"

    def partition(self, source, k: int) -> MultiWorkerResult:
        """Partition ``source`` (a manifest or flat binary edge file).

        Since PR 8 this is a thin shim: the constructor knobs become a
        :class:`~repro.runtime.spec.JobSpec` (``workers >= 1`` selects
        the :class:`~repro.runtime.executor.PoolExecutor`, which plans
        the shard assignment and runs the BSP schedule exactly as this
        method used to), and the unified result converts back to the
        historical :class:`MultiWorkerResult` — pinned bit-identical by
        the shm/pipes/in-process equivalence suites.
        """
        from repro.runtime.api import run_job
        from repro.runtime.spec import InputSpec, JobSpec

        spec = JobSpec(
            algo="HDRF",
            k=int(k),
            input=InputSpec.from_source(
                source, chunk_size=self.chunk_size, prefetch=self.prefetch,
            ),
            algo_params=(("eps", self.eps), ("lam", self.lam)),
            alpha=self.alpha,
            workers=self.workers,
            batch=self.batch,
            metrics_workers=self.metrics_workers,
            shared_memory=self.shared_memory,
            mp_context=self.mp_context,
            timeout=self.timeout,
        )
        outcome = run_job(spec, source=source)
        result = outcome.to_multi_worker()
        self.last_result = result
        return result


class MultiWorkerHep(OutOfCoreHep):
    """Out-of-core HEP whose streaming phase runs on a worker pool.

    Phases one through four are exactly
    :class:`~repro.stream.pipeline.OutOfCoreHep` (counting pass, budget
    -> tau, split with h2h spill, NE++ on the pruned CSR).  Phase two is
    where this class differs: the h2h spill is dealt round-robin into
    per-worker segment files and streamed by ``workers`` OS processes
    under the BSP schedule — bit-identical to
    :class:`~repro.parallel.bsp_streaming.ParallelHepPartitioner` with
    the same tau/workers/batch, which is itself sequential HEP at
    ``workers=1, batch=1``.

    The buffered scoring window is inherently sequential, so
    ``buffer_size`` is rejected.
    """

    def __init__(
        self,
        workers: int = 2,
        batch: int = DEFAULT_WORKER_BATCH,
        mp_context: str | None = None,
        timeout: float = DEFAULT_WORKER_TIMEOUT,
        shared_memory: bool = True,
        **kwargs,
    ) -> None:
        if kwargs.get("buffer_size") is not None:
            raise ConfigurationError(
                "buffer_size is a sequential scoring window; it cannot "
                "combine with multi-worker streaming"
            )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        # Counting/metrics sweeps default to the streaming parallelism.
        kwargs.setdefault("metrics_workers", int(workers))
        super().__init__(**kwargs)
        self.workers = int(workers)
        self.batch = int(batch)
        self.mp_context = mp_context
        self.timeout = timeout
        self.shared_memory = bool(shared_memory)
        self.last_report: MultiWorkerReport | None = None
        self.name = f"HEP-mw{workers}"

    def partition(self, source, k: int):
        """Run the pipeline; ``last_report`` reflects only this run."""
        self.last_report = None
        return super().partition(source, k)

    def _job_spec(self, source, k: int):
        """The sequential HEP spec with this driver's execution shape.

        ``workers >= 1`` makes the runtime pick the
        :class:`~repro.runtime.executor.PoolExecutor`, whose spill
        stream deals the h2h edges round-robin into per-worker segments
        and runs them under the BSP schedule — exactly what this class's
        ``_stream_spill`` override used to do.
        """
        import dataclasses

        return dataclasses.replace(
            super()._job_spec(source, k),
            workers=self.workers,
            batch=self.batch,
            mp_context=self.mp_context,
            timeout=self.timeout,
            shared_memory=self.shared_memory,
        )

    def _absorb(self, outcome) -> None:
        """Keep the BSP report the runtime produced for ``last_report``."""
        self.last_report = outcome.report

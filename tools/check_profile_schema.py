#!/usr/bin/env python
"""CI gate: validate ``results/BENCH_profile.json``'s structure.

Runs :func:`repro.obs.summary.validate_profile_record` against the file
produced by ``benchmarks/bench_profile.py``, so a refactor that drops a
phase, loses ``cpu_count``, or emits malformed fractions fails the build
instead of silently degrading the profile artifact.

Usage::

    PYTHONPATH=src python tools/check_profile_schema.py \
        results/BENCH_profile.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.errors import TraceFormatError
from repro.obs.summary import validate_profile_record


def main(argv: list[str]) -> int:
    """Validate each profile JSON path given on the command line."""
    if not argv:
        print("usage: check_profile_schema.py BENCH_profile.json [...]",
              file=sys.stderr)
        return 2
    for name in argv:
        path = Path(name)
        if not path.exists():
            print(f"error: {path}: no such file (did bench_profile run?)",
                  file=sys.stderr)
            return 1
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            print(f"error: {path}: not valid JSON: {exc}", file=sys.stderr)
            return 1
        try:
            validate_profile_record(record)
        except TraceFormatError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 1
        rows = record["rows"]
        print(f"{path}: ok (cpu_count={record['cpu_count']}, "
              f"{len(rows)} rows, workers="
              f"{[row['workers'] for row in rows]})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Trace-file readers, rollups, and phase-attributed profiling.

This module turns raw JSONL traces (written by
:class:`repro.obs.tracer.Tracer`) into the three artifacts users see:

* :func:`aggregate_spans` / :func:`total_counters` — per-span-name and
  per-counter rollups,
* :func:`phase_breakdown` — attribution of a run's wall-clock to the
  named phases ``spawn`` / ``pickle`` / ``pipe`` / ``compute`` /
  ``merge`` (plus an unattributed ``other`` remainder),
* :func:`format_summary` — the table printed by
  ``repro trace summarize``.

:func:`validate_profile_record` is the schema check shared by
``benchmarks/bench_profile.py``, ``tools/check_profile_schema.py`` and
the tier-1 tests, so the ``results/BENCH_profile.json`` structure can
never silently drift.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from pathlib import Path
from typing import Any

from repro.errors import TraceFormatError

__all__ = [
    "PROFILE_PHASES",
    "aggregate_spans",
    "format_summary",
    "phase_breakdown",
    "read_trace",
    "total_counters",
    "validate_profile_record",
]

PROFILE_PHASES = ("spawn", "pickle", "pipe", "compute", "merge")
"""Named phases a profile attributes wall-clock time to."""

#: Coordinator spans whose duration (minus any nested pool spans) is
#: single-process compute: scans, tau selection, splitting, phase one,
#: sequential streaming, spill dealing, and the extsort stages.
_SEQ_COMPUTE = frozenset({
    "count_pass",
    "metrics_pass",
    "select_tau",
    "split_pass",
    "phase_one",
    "stream_pass",
    "split_spill",
    "run_generation",
    "collapse_runs",
    "merge_runs",
    "finalize",
})

#: Span names that represent multi-process machinery nested inside a
#: sequential-compute span (their time must not be double counted).
_POOL_SPANS = frozenset({"pool_spawn", "pool_run"})


def read_trace(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into its list of records.

    Raises :class:`~repro.errors.TraceFormatError` on unparseable lines
    or a missing/foreign header record.
    """
    source = Path(path)
    records: list[dict[str, Any]] = []
    try:
        text = source.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise TraceFormatError(f"cannot read trace {source}: {exc}") from exc
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{source}:{lineno}: not valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict) or "type" not in record:
            raise TraceFormatError(
                f"{source}:{lineno}: record is not an object with a 'type'"
            )
        records.append(record)
    if not records or records[0].get("type") != "trace":
        raise TraceFormatError(
            f"{source}: missing 'trace' header record (not a trace file?)"
        )
    return records


def _spans(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """The span records of a trace, in emission order."""
    return [r for r in records if r.get("type") == "span"]


def aggregate_spans(records: list[dict[str, Any]]) -> dict[str, dict]:
    """Per-span-name rollup: count, total/mean duration, memory delta."""
    rollup: dict[str, dict[str, float]] = {}
    for record in _spans(records):
        entry = rollup.setdefault(
            record["name"],
            {"count": 0, "total_s": 0.0, "mem_delta_bytes": 0},
        )
        entry["count"] += 1
        entry["total_s"] += record.get("dur_s", 0.0)
        entry["mem_delta_bytes"] += record.get("mem_delta_bytes", 0)
    for entry in rollup.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return rollup


def total_counters(records: list[dict[str, Any]]) -> dict[str, float]:
    """Sum of every counter across all spans of a trace."""
    totals: dict[str, float] = {}
    for record in _spans(records):
        for key, value in (record.get("counters") or {}).items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _wall_seconds(spans: list[dict[str, Any]]) -> float:
    """Wall-clock of a trace: the root partition span(s), else all roots."""
    roots = [s for s in spans if s.get("parent") is None]
    named = [s for s in roots if s["name"] in ("partition", "extsort")]
    chosen = named or roots
    return float(sum(s.get("dur_s", 0.0) for s in chosen))


def phase_breakdown(
    records: list[dict[str, Any]], wall_s: float | None = None,
) -> dict[str, Any]:
    """Attribute a trace's wall-clock to the :data:`PROFILE_PHASES`.

    The attribution rules mirror the span taxonomy (see
    ``docs/observability.md``):

    * ``pool_spawn`` spans → **spawn**; coordinator-side ``shm_attach``
      spans (segment create/attach, no ``worker`` attr) are pool setup
      too → **spawn** (worker-side attaches overlap the coordinator's
      recv wait and are already apportioned there);
    * ``superstep_commit`` (the shared-memory protocol's double-buffer
      fold+flip, aggregated over the run) → **merge**;
    * ``pool_run`` spans carry coordinator-side counters: ``send_s`` →
      **pipe**, ``merge_s`` → **merge**, ``encode_s`` → **pickle**, and
      ``recv_wait_s`` (time the coordinator blocked on worker frames)
      is apportioned between **compute** / **pickle** / **pipe** using
      the adopted workers' own ``busy_s`` / ``encode_s`` / ``send_s``
      shares (all to **pipe** when workers reported nothing);
    * sequential coordinator stages (counting/metrics scans, tau
      selection, splitting, phase one, streaming, spill dealing,
      extsort stages) → **compute**, minus any nested pool or
      ``shm_attach`` spans.

    Returns ``{"wall_s", "seconds", "fractions", "attributed"}`` where
    ``fractions`` includes an ``other`` remainder.
    """
    spans = _spans(records)
    if wall_s is None:
        wall_s = _wall_seconds(spans)
    children: dict[int, list[dict]] = defaultdict(list)
    for span in spans:
        if span.get("parent") is not None:
            children[span["parent"]].append(span)
    seconds = dict.fromkeys(PROFILE_PHASES, 0.0)
    for span in spans:
        name = span["name"]
        counters = span.get("counters") or {}
        if name == "pool_spawn":
            seconds["spawn"] += span.get("dur_s", 0.0)
        elif name == "shm_attach":
            if "worker" not in (span.get("attrs") or {}):
                seconds["spawn"] += span.get("dur_s", 0.0)
        elif name == "superstep_commit":
            seconds["merge"] += span.get("dur_s", 0.0)
        elif name == "pool_run":
            seconds["pipe"] += counters.get("send_s", 0.0)
            seconds["merge"] += counters.get("merge_s", 0.0)
            seconds["pickle"] += counters.get("encode_s", 0.0)
            recv_wait = counters.get("recv_wait_s", 0.0)
            busy = encode = send = 0.0
            for child in children[span["id"]]:
                if not child["name"].startswith("worker_"):
                    continue
                worker_counters = child.get("counters") or {}
                busy += worker_counters.get("busy_s", 0.0)
                encode += worker_counters.get("encode_s", 0.0)
                send += worker_counters.get("send_s", 0.0)
            active = busy + encode + send
            if active > 0:
                seconds["compute"] += recv_wait * busy / active
                seconds["pickle"] += recv_wait * encode / active
                seconds["pipe"] += recv_wait * send / active
            else:
                seconds["pipe"] += recv_wait
        elif name in _SEQ_COMPUTE:
            # Subtract direct children that are themselves accounted
            # (nested pools, or nested sequential stages like
            # split_spill inside stream_pass) so no second is counted
            # twice.
            nested = sum(
                child.get("dur_s", 0.0)
                for child in children[span["id"]]
                if child["name"] in _POOL_SPANS
                or child["name"] == "shm_attach"
                or child["name"] in _SEQ_COMPUTE
            )
            seconds["compute"] += max(span.get("dur_s", 0.0) - nested, 0.0)
    attributed_s = sum(seconds.values())
    fractions = {
        phase: (value / wall_s if wall_s > 0 else 0.0)
        for phase, value in seconds.items()
    }
    fractions["other"] = max(1.0 - sum(fractions.values()), 0.0)
    return {
        "wall_s": wall_s,
        "seconds": seconds,
        "fractions": fractions,
        "attributed": (attributed_s / wall_s) if wall_s > 0 else 0.0,
    }


def _format_table(header: list[str], rows: list[list[str]]) -> list[str]:
    """Left-align ``rows`` under ``header`` (first column), right-align rest."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: list[str]) -> str:
        cells = [row[0].ljust(widths[0])]
        cells += [cell.rjust(widths[i + 1]) for i, cell in enumerate(row[1:])]
        return "  ".join(cells).rstrip()
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def _si_bytes(n: float) -> str:
    """Human-readable signed byte count."""
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{sign}{n:.1f}{unit}" if unit != "B" else f"{sign}{n:.0f}B"
        n /= 1024
    return f"{sign}{n:.1f}GiB"  # pragma: no cover - loop always returns


def format_summary(records: list[dict[str, Any]]) -> str:
    """Render the per-span / counter / phase tables for a trace."""
    spans = _spans(records)
    header = records[0] if records else {}
    wall = _wall_seconds(spans)
    lines = [
        f"trace: {len(spans)} spans, wall {wall:.3f}s, "
        f"memory probe: {header.get('memory') or 'off'}"
    ]
    rollup = aggregate_spans(records)
    has_mem = header.get("memory") is not None
    span_header = ["span", "count", "total_s", "mean_s"]
    if has_mem:
        span_header.append("mem_delta")
    span_rows = []
    for name, entry in sorted(
        rollup.items(), key=lambda item: -item[1]["total_s"]
    ):
        row = [
            name,
            str(entry["count"]),
            f"{entry['total_s']:.4f}",
            f"{entry['mean_s']:.4f}",
        ]
        if has_mem:
            row.append(_si_bytes(entry["mem_delta_bytes"]))
        span_rows.append(row)
    if span_rows:
        lines.append("")
        lines.extend(_format_table(span_header, span_rows))
    counters = total_counters(records)
    if counters:
        lines.append("")
        counter_rows = [
            [name, f"{value:.4f}" if isinstance(value, float) else str(value)]
            for name, value in sorted(counters.items())
        ]
        lines.extend(_format_table(["counter", "total"], counter_rows))
    breakdown = phase_breakdown(records, wall_s=wall)
    lines.append("")
    lines.append("phase attribution (fraction of wall):")
    fractions = breakdown["fractions"]
    lines.append(
        "  "
        + "  ".join(
            f"{phase} {fractions[phase]:.3f}"
            for phase in (*PROFILE_PHASES, "other")
        )
    )
    lines.append(f"  attributed: {breakdown['attributed']:.1%}")
    return "\n".join(lines)


def validate_profile_record(record: Any) -> None:
    """Validate the ``results/BENCH_profile.json`` structure.

    Raises :class:`~repro.errors.TraceFormatError` naming the first
    violated constraint; returns ``None`` when the record conforms.
    """
    def fail(message: str) -> None:
        raise TraceFormatError(f"BENCH_profile record: {message}")

    if not isinstance(record, dict):
        fail("top level is not an object")
    if record.get("bench") != "profile":
        fail("'bench' must be the string 'profile'")
    for key in ("graph", "edges", "k", "cpu_count", "rows"):
        if key not in record:
            fail(f"missing required key {key!r}")
    if not isinstance(record["cpu_count"], int) or record["cpu_count"] < 1:
        fail("'cpu_count' must be a positive integer")
    if not isinstance(record["edges"], int) or record["edges"] < 0:
        fail("'edges' must be a non-negative integer")
    rows = record["rows"]
    if not isinstance(rows, list) or not rows:
        fail("'rows' must be a non-empty list")
    for index, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(f"rows[{index}] is not an object")
        for key in ("workers", "wall_s", "phases", "attributed"):
            if key not in row:
                fail(f"rows[{index}] missing required key {key!r}")
        if not isinstance(row["workers"], int) or row["workers"] < 1:
            fail(f"rows[{index}]['workers'] must be a positive integer")
        if not isinstance(row["wall_s"], (int, float)) or row["wall_s"] <= 0:
            fail(f"rows[{index}]['wall_s'] must be a positive number")
        phases = row["phases"]
        if not isinstance(phases, dict):
            fail(f"rows[{index}]['phases'] is not an object")
        for phase in (*PROFILE_PHASES, "other"):
            value = phases.get(phase)
            if not isinstance(value, (int, float)) or value < 0:
                fail(
                    f"rows[{index}]['phases'][{phase!r}] must be a "
                    "non-negative number"
                )
        attributed = row["attributed"]
        if not isinstance(attributed, (int, float)) or not (
            0.0 <= attributed <= 1.5
        ):
            fail(f"rows[{index}]['attributed'] must be a number in [0, 1.5]")

"""Universal out-of-core driver for the streaming baseline partitioners.

PR 1 made HEP's memory constraint real; this module extends the same
chunked I/O to every *streaming* baseline the paper compares against
(HDRF, Greedy, DBH, Grid, and multi-pass restreaming HDRF), so the
Tables 2–4 comparison can run under a genuine memory budget.  The key
observation is that all of these algorithms only ever need

* ``O(n + k)`` state (replica sets / incidence counters, loads, degrees)
  — exactly what :class:`~repro.partition.state.StreamingState` holds,
* the edges **in stream order**, which an
  :class:`~repro.stream.reader.EdgeChunkSource` yields in bounded chunks.

Each algorithm is wrapped in a small :class:`StreamingAlgorithm` adapter
that (a) builds its state from the counting-pass
:class:`~repro.stream.scan.SourceStats` and (b) consumes one chunk at a
time through the *same* kernel function the in-memory partitioner uses
(:func:`~repro.partition.hdrf.hdrf_stream`,
:func:`~repro.partition.greedy.greedy_stream`,
:func:`~repro.partition.dbh.dbh_assign`,
:func:`~repro.partition.grid.grid_stream`,
:func:`~repro.partition.restreaming.restream_block`).  With natural
chunk order the streamed result is therefore **bit-identical** to the
in-memory baseline — the equivalence property the test suite pins per
algorithm.

Restreaming demonstrates why :class:`EdgeChunkSource` iteration is
restartable: every refinement pass is one fresh chunked re-read of the
same source.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.partition.base import PartitionAssignment
from repro.partition.dbh import dbh_assign, repair_overflow
from repro.partition.greedy import greedy_stream
from repro.partition.grid import grid_cells, grid_shape, grid_stream
from repro.partition.hdrf import hdrf_stream
from repro.partition.restreaming import restream_block
from repro.partition.state import StreamingState
from repro.runtime.registry import (
    AlgorithmRegistryView,
    create_algorithm,
    register_streaming_algorithm,
)
from repro.stream.reader import DEFAULT_CHUNK_SIZE
from repro.stream.scan import SourceStats

__all__ = [
    "StreamingAlgorithm",
    "StreamingPartitionerDriver",
    "StreamedResult",
    "STREAMING_ALGORITHMS",
    "make_streaming_algorithm",
]


@dataclass
class StreamedResult:
    """Outcome of one out-of-core baseline run (no Graph in RAM)."""

    algorithm: str
    parts: np.ndarray          # (m,) int32 per-edge partition ids
    k: int
    num_vertices: int
    num_edges: int
    chunk_size: int
    passes: int
    loads: np.ndarray          # (k,) final per-partition edge counts
    replication_factor: float
    edge_balance: float
    runtime_s: float

    @property
    def num_unassigned(self) -> int:
        """Number of edges left without a partition (should be zero)."""
        return int((self.parts < 0).sum())

    def to_assignment(self, graph) -> PartitionAssignment:
        """Attach the parts to an in-memory Graph (tests/analysis only)."""
        return PartitionAssignment(graph, self.k, self.parts)


class StreamingAlgorithm(abc.ABC):
    """Adapter: one streaming baseline consuming edge chunks.

    Lifecycle: :meth:`prepare` once after the counting pass, then
    :meth:`process` per chunk (``passes`` sweeps over the whole source),
    then :meth:`finalize` on the completed parts array.
    """

    #: table name of the wrapped baseline
    name: str = "base"
    #: number of full sweeps over the source the algorithm needs
    passes: int = 1

    @abc.abstractmethod
    def prepare(self, stats: SourceStats, k: int, capacity: int) -> None:
        """Allocate the ``O(n + k)`` state from counting-pass statistics."""

    @abc.abstractmethod
    def process(
        self, pairs: np.ndarray, eids: np.ndarray, parts: np.ndarray
    ) -> None:
        """Consume one chunk, writing assignments into ``parts[eids]``."""

    def finalize(self, parts: np.ndarray, k: int, capacity: int) -> np.ndarray:
        """Post-stream fixup (e.g. overflow repair); default: identity."""
        return parts


@register_streaming_algorithm("HDRF")
class HdrfStreaming(StreamingAlgorithm):
    """HDRF over chunks — the standalone baseline, not HEP's phase two.

    ``exact_degrees=False`` reproduces the original HDRF setting (partial
    degrees accumulated while streaming), matching
    :class:`~repro.partition.hdrf.HdrfPartitioner`'s default.
    """

    name = "HDRF"

    def __init__(
        self, lam: float = 1.1, eps: float = 1.0, exact_degrees: bool = False
    ) -> None:
        self.lam = lam
        self.eps = eps
        self.exact_degrees = exact_degrees

    def prepare(self, stats: SourceStats, k: int, capacity: int) -> None:
        """Build fresh streaming state (partial or exact degrees)."""
        self.state = StreamingState(
            stats.num_vertices,
            k,
            capacity,
            exact_degrees=stats.degrees if self.exact_degrees else None,
        )

    def process(
        self, pairs: np.ndarray, eids: np.ndarray, parts: np.ndarray
    ) -> None:
        """Run Algorithm 4 over one chunk against the shared state."""
        hdrf_stream(self.state, pairs, eids, parts, lam=self.lam, eps=self.eps)


@register_streaming_algorithm("Greedy")
class GreedyStreaming(StreamingAlgorithm):
    """PowerGraph greedy placement over chunks (exact degrees upfront)."""

    name = "Greedy"

    def prepare(self, stats: SourceStats, k: int, capacity: int) -> None:
        """Build state with exact degrees and unassigned-edge counters."""
        self.state = StreamingState(
            stats.num_vertices, k, capacity, exact_degrees=stats.degrees
        )
        self.remaining = stats.degrees.copy()

    def process(
        self, pairs: np.ndarray, eids: np.ndarray, parts: np.ndarray
    ) -> None:
        """Place one chunk with the greedy case analysis."""
        greedy_stream(self.state, self.remaining, pairs, eids, parts)


@register_streaming_algorithm("DBH")
class DbhStreaming(StreamingAlgorithm):
    """Degree-based hashing over chunks (needs the counting-pass degrees)."""

    name = "DBH"

    def __init__(self, salt: int = 0) -> None:
        self.salt = salt

    def prepare(self, stats: SourceStats, k: int, capacity: int) -> None:
        """Keep the degree array; hashing itself is stateless."""
        self.degrees = stats.degrees
        self.k = k

    def process(
        self, pairs: np.ndarray, eids: np.ndarray, parts: np.ndarray
    ) -> None:
        """Hash one chunk of edges (pure elementwise assignment)."""
        parts[eids] = dbh_assign(pairs, self.degrees, self.k, self.salt)

    def finalize(self, parts: np.ndarray, k: int, capacity: int) -> np.ndarray:
        """Repair the rare capacity overflow, as the in-memory path does."""
        return repair_overflow(parts, k, capacity)


@register_streaming_algorithm("Grid")
class GridStreaming(StreamingAlgorithm):
    """2-D constrained hashing over chunks (load counters persist)."""

    name = "Grid"

    def __init__(self, salt: int = 0) -> None:
        self.salt = salt

    def prepare(self, stats: SourceStats, k: int, capacity: int) -> None:
        """Set up the grid shape and per-cell load counters."""
        self.rows, self.cols = grid_shape(k)
        self.loads = np.zeros(k, dtype=np.int64)

    def process(
        self, pairs: np.ndarray, eids: np.ndarray, parts: np.ndarray
    ) -> None:
        """Assign one chunk to the lighter of each edge's crossing cells."""
        cell_a, cell_b = grid_cells(pairs, self.rows, self.cols, self.salt)
        grid_stream(cell_a, cell_b, self.loads, eids, parts)

    def finalize(self, parts: np.ndarray, k: int, capacity: int) -> np.ndarray:
        """Repair the rare capacity overflow, as the in-memory path does."""
        return repair_overflow(parts, k, capacity)


@register_streaming_algorithm("Restreaming")
class RestreamingHdrfStreaming(StreamingAlgorithm):
    """Multi-pass restreaming HDRF: each pass is one re-read of the source."""

    name = "Restreaming"

    def __init__(self, passes: int = 3, lam: float = 1.1, eps: float = 1.0) -> None:
        if passes < 1:
            raise ConfigurationError(f"passes must be >= 1, got {passes}")
        self.passes = passes
        self.lam = lam
        self.eps = eps
        self.name = f"ReHDRF-{passes}"

    def prepare(self, stats: SourceStats, k: int, capacity: int) -> None:
        """Allocate incidence counters, loads and the degree array."""
        self.incidence = np.zeros((k, stats.num_vertices), dtype=np.int32)
        self.loads = np.zeros(k, dtype=np.int64)
        self.degrees = stats.degrees
        self.capacity = capacity

    def process(
        self, pairs: np.ndarray, eids: np.ndarray, parts: np.ndarray
    ) -> None:
        """Revise one chunk's assignments against the shared state."""
        restream_block(
            pairs,
            eids,
            self.incidence,
            self.loads,
            self.degrees,
            parts,
            self.capacity,
            self.lam,
            self.eps,
        )


#: live name -> class view of the decorator registry
#: (:mod:`repro.runtime.registry`); the pre-PR 8 mapping API, same names.
STREAMING_ALGORITHMS = AlgorithmRegistryView()


def make_streaming_algorithm(name: str, **kwargs) -> StreamingAlgorithm:
    """Instantiate a streaming algorithm adapter from its table name.

    Kept as the historical spelling of
    :func:`repro.runtime.registry.create_algorithm` (case-insensitive
    lookup, same error message on unknown names).
    """
    return create_algorithm(name, **kwargs)


class StreamingPartitionerDriver:
    """Run any streaming baseline out-of-core from a chunked edge source.

    Parameters
    ----------
    algorithm:
        A :class:`StreamingAlgorithm` instance or a name from
        :data:`STREAMING_ALGORITHMS` (``algo_kwargs`` are forwarded to
        the factory when a name is given).
    alpha:
        Balance slack for the per-partition capacity
        (:func:`~repro.partition.base.capacity_bound`).
    chunk_size:
        Edges per I/O chunk for every pass.
    order, seed:
        Chunk order for sources that support reordering (``"natural"``
        keeps bit-identity with the in-memory baselines).
    prefetch:
        When > 0, wrap the source in a
        :class:`~repro.stream.reader.PrefetchingEdgeSource` holding at
        most this many decoded chunks ahead of the consumer.
    mmap:
        Serve chunks from a zero-copy
        :class:`~repro.stream.shard.MmapEdgeSource` when the source is
        a flat binary edge file (results are bit-identical; this is a
        pure I/O optimization).
    metrics_workers:
        When > 1 and the source is a shard manifest or flat binary edge
        file, run the counting and metrics passes on this many worker
        processes (:mod:`repro.stream.parallel_scan`) — bit-identical
        results, wall-clock scaling with cores.  0/1 keeps the
        sequential sweeps.
    shared_memory:
        When the scan passes run on workers, keep one warm
        :class:`~repro.stream.workers.PersistentWorkerPool` alive for
        both passes instead of forking a fresh pool per pass.
        ``False`` restores the PR 5 cold-pool behavior (the
        ``--no-shared-memory`` escape hatch).
    """

    def __init__(
        self,
        algorithm: str | StreamingAlgorithm,
        alpha: float = 1.0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        order: str = "natural",
        seed: int = 0,
        prefetch: int = 0,
        mmap: bool = False,
        metrics_workers: int = 0,
        shared_memory: bool = True,
        **algo_kwargs,
    ) -> None:
        if isinstance(algorithm, StreamingAlgorithm):
            if algo_kwargs:
                raise ConfigurationError(
                    "algo kwargs only apply when algorithm is given by name"
                )
            self.algorithm = algorithm
        else:
            self.algorithm = make_streaming_algorithm(algorithm, **algo_kwargs)
        if metrics_workers < 0:
            raise ConfigurationError(
                f"metrics_workers must be >= 0, got {metrics_workers}"
            )
        self.alpha = alpha
        self.chunk_size = int(chunk_size)
        self.order = order
        self.seed = seed
        self.prefetch = int(prefetch)
        self.mmap = bool(mmap)
        self.metrics_workers = int(metrics_workers)
        self.shared_memory = bool(shared_memory)
        self.last_result: StreamedResult | None = None
        self.name = f"{self.algorithm.name}-ooc"

    def partition(self, source, k: int) -> StreamedResult:
        """Drive the algorithm over ``source``; bounded memory throughout.

        ``source`` is anything :func:`~repro.stream.reader.
        open_edge_source` accepts (edge file, dataset name, Graph, or an
        existing source).  Since PR 8 this is a thin shim: it builds a
        :class:`~repro.runtime.spec.JobSpec` from the constructor knobs
        and delegates to :func:`repro.runtime.api.run_job` (passing the
        already-validated adapter instance), then converts the unified
        result back to the historical :class:`StreamedResult` — pinned
        bit-identical to the pre-runtime driver by the equivalence
        suites.
        """
        # Deferred: repro.runtime.api pulls in the executor/stage layers,
        # which this module must not require at import time.
        from repro.runtime.api import run_job
        from repro.runtime.registry import (
            algorithm_params,
            registered_algorithm_name,
        )
        from repro.runtime.spec import InputSpec, JobSpec

        name = registered_algorithm_name(self.algorithm) or self.algorithm.name
        params = algorithm_params(self.algorithm) or ()
        spec = JobSpec(
            algo=name,
            k=int(k),
            input=InputSpec.from_source(
                source, chunk_size=self.chunk_size, order=self.order,
                seed=self.seed, prefetch=self.prefetch, mmap=self.mmap,
            ),
            algo_params=params,
            alpha=self.alpha,
            seed=self.seed,
            metrics_workers=self.metrics_workers,
            shared_memory=self.shared_memory,
        )
        outcome = run_job(spec, source=source, algorithm=self.algorithm)
        result = outcome.to_streamed()
        self.last_result = result
        return result

"""Quality metrics for edge partitionings (Section 2 definitions).

In-memory assignments are scored by the classic functions below; a
finished *on-disk* assignment is scored out of core — optionally on
worker processes — by :mod:`repro.metrics.streaming`.
"""

from repro.metrics.balance import edge_balance, load_distribution, vertex_balance
from repro.metrics.communication import (
    boundary_vertices_per_partition,
    communication_volume,
    num_cut_vertices,
)
from repro.metrics.replication import (
    replicas_per_vertex,
    replication_factor,
    rf_by_degree_bucket,
)
from repro.metrics.report import PartitionReport, format_table, summarize
from repro.metrics.streaming import StreamedQuality, streamed_quality_report
from repro.metrics.validity import assert_valid, is_valid

__all__ = [
    "StreamedQuality",
    "streamed_quality_report",
    "replication_factor",
    "replicas_per_vertex",
    "rf_by_degree_bucket",
    "edge_balance",
    "vertex_balance",
    "load_distribution",
    "assert_valid",
    "is_valid",
    "PartitionReport",
    "summarize",
    "format_table",
    "communication_volume",
    "num_cut_vertices",
    "boundary_vertices_per_partition",
]

"""Decorator-based registry of streaming-algorithm adapters.

PR 8 replaces :func:`~repro.stream.driver.make_streaming_algorithm`'s
hand-maintained string dispatch with this registry: an algorithm class
decorates itself with :func:`register_streaming_algorithm` and is from
then on discoverable by name (``--algo help`` in the CLI prints
:func:`algorithm_catalog`), constructible by
:func:`create_algorithm`, and hashable into a
:class:`~repro.runtime.spec.JobSpec` via the declared constructor
parameters (:func:`algorithm_params`).  New algorithms — the ROADMAP's
buffered HeiStream-style partitioner, for one — register without
editing any factory.

This module is a leaf on purpose: it imports nothing from
:mod:`repro.stream`, so both the spec layer and the driver layer can
depend on it without cycles.  The built-in adapters live in
:mod:`repro.stream.driver`; importing that module populates the
registry (:func:`ensure_builtins_registered` does it lazily for
callers that start from :mod:`repro.runtime`).
"""

from __future__ import annotations

import inspect
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "AlgorithmInfo",
    "AlgorithmRegistryView",
    "algorithm_catalog",
    "algorithm_info",
    "algorithm_names",
    "algorithm_params",
    "create_algorithm",
    "ensure_builtins_registered",
    "register_streaming_algorithm",
    "registered_algorithm_name",
]


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registered streaming algorithm: its class and declared knobs."""

    #: canonical table name (``--algo`` spelling, case-insensitive match)
    name: str
    #: the :class:`~repro.stream.driver.StreamingAlgorithm` subclass
    factory: type
    #: ``(param, default)`` pairs from the constructor signature
    params: tuple[tuple[str, object], ...]
    #: first docstring line, shown by ``--algo help``
    summary: str


_ALGORITHMS: dict[str, AlgorithmInfo] = {}


def register_streaming_algorithm(name: str):
    """Class decorator: register a streaming algorithm under ``name``.

    The constructor signature is introspected once at registration; its
    keyword parameters (with defaults) become the algorithm's declared
    parameter set, used both for the ``--algo help`` listing and for
    canonicalizing :class:`~repro.runtime.spec.JobSpec` hashes.
    """

    def decorate(cls: type) -> type:
        for existing in _ALGORITHMS:
            if existing.lower() == name.lower():
                raise ConfigurationError(
                    f"streaming algorithm {name!r} is already registered"
                )
        signature = inspect.signature(cls.__init__)
        params = tuple(
            (parameter.name, parameter.default)
            for parameter in signature.parameters.values()
            if parameter.name != "self"
            and parameter.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        )
        doc = inspect.getdoc(cls) or ""
        summary = doc.splitlines()[0].strip() if doc else ""
        _ALGORITHMS[name] = AlgorithmInfo(
            name=name, factory=cls, params=params, summary=summary
        )
        return cls

    return decorate


def ensure_builtins_registered() -> None:
    """Import the built-in adapters so the registry is populated."""
    import repro.stream.driver  # noqa: F401  (registers on import)


def algorithm_names() -> tuple[str, ...]:
    """Canonical names of every registered algorithm, in registration order."""
    ensure_builtins_registered()
    return tuple(_ALGORITHMS)


def algorithm_info(name: str) -> AlgorithmInfo:
    """Case-insensitive registry lookup; raises on unknown names."""
    ensure_builtins_registered()
    for info in _ALGORITHMS.values():
        if info.name.lower() == name.lower():
            return info
    raise ConfigurationError(
        f"unknown streaming algorithm {name!r}; available: "
        f"{', '.join(_ALGORITHMS)}"
    )


def create_algorithm(name: str, **kwargs):
    """Instantiate a registered streaming algorithm from its table name."""
    return algorithm_info(name).factory(**kwargs)


def registered_algorithm_name(instance) -> str | None:
    """Registry name for an adapter instance, or ``None`` if unregistered."""
    ensure_builtins_registered()
    for info in _ALGORITHMS.values():
        if type(instance) is info.factory:
            return info.name
    return None


def algorithm_params(instance) -> tuple[tuple[str, object], ...] | None:
    """Recover ``(param, value)`` pairs from an adapter instance.

    Uses the declared constructor parameters of the instance's
    registered class; every built-in adapter stores its knobs as
    same-named attributes.  Returns ``None`` for unregistered classes
    (such specs are not content-addressable).
    """
    ensure_builtins_registered()
    for info in _ALGORITHMS.values():
        if type(instance) is info.factory:
            return tuple(
                (param, getattr(instance, param, default))
                for param, default in info.params
            )
    return None


def algorithm_catalog() -> str:
    """Human-readable listing of every registered algorithm and its knobs.

    This is what ``repro partition --algo help`` prints; ``HEP`` is
    listed first because the two-phase pipeline is not a
    :class:`~repro.stream.driver.StreamingAlgorithm` adapter but the
    planner's other pipeline shape.
    """
    ensure_builtins_registered()
    lines = ["registered algorithms (--algo NAME, case-insensitive):", ""]
    lines.append(
        "  HEP           two-phase NE++ + informed HDRF pipeline "
        "(tau/memory-budget knobs)"
    )
    for info in _ALGORITHMS.values():
        knobs = ", ".join(
            f"{param}={default!r}" for param, default in info.params
        )
        lines.append(f"  {info.name:<13} {info.summary}")
        if knobs:
            lines.append(f"  {'':<13}   params: {knobs}")
    return "\n".join(lines)


class AlgorithmRegistryView(Mapping):
    """Live read-only ``name -> class`` view of the registry.

    Exported as :data:`repro.stream.driver.STREAMING_ALGORITHMS` so the
    pre-PR 8 mapping API keeps working while staying in sync with
    decorator registrations that happen later.
    """

    def __getitem__(self, name: str) -> type:
        """Look up a registered algorithm class by exact name."""
        ensure_builtins_registered()
        return _ALGORITHMS[name].factory

    def __iter__(self):
        """Iterate canonical algorithm names in registration order."""
        ensure_builtins_registered()
        return iter(_ALGORITHMS)

    def __len__(self) -> int:
        """Number of registered algorithms."""
        ensure_builtins_registered()
        return len(_ALGORITHMS)

    def __repr__(self) -> str:
        """Show the registered names (helps failing-test output)."""
        return f"AlgorithmRegistryView({', '.join(self)})"

"""Attached artifacts: interactive lookups over stored assignments.

A completed job's assignment lives in the
:class:`~repro.runtime.store.ArtifactStore` as ``parts.npy`` +
``loads.npy`` + ``meta.json``.  Point lookups (``edge → part``,
``vertex → parts``) and quality summaries should answer in
microseconds, not re-open the store per request — so the service keeps
a small LRU (:class:`ArtifactCache`) of :class:`AttachedArtifact`
objects: the parts array mapped once, the stored quality summary
parsed once, and a ``k × n`` vertex→parts cover built lazily on the
first vertex lookup by streaming the input a single time.

Everything here is synchronous and thread-safe-by-construction (reads
of immutable arrays); the handlers run the blocking attach/build steps
on the event loop's default executor.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, ReproError
from repro.runtime.store import ArtifactStore

__all__ = ["ArtifactCache", "AttachedArtifact"]


class AttachedArtifact:
    """One stored assignment, loaded for point lookups."""

    def __init__(self, key: str, meta: dict[str, Any],
                 parts: np.ndarray, loads: np.ndarray) -> None:
        """Wrap the loaded entry files; cover building is deferred."""
        self.key = key
        self.meta = meta
        self.parts = parts
        self.loads = loads
        self.k = int(meta["k"])
        self.num_vertices = int(meta["num_vertices"])
        self.num_edges = int(meta["num_edges"])
        self._cover: np.ndarray | None = None
        self._cover_lock = threading.Lock()

    def edge_part(self, eid: int) -> int:
        """Partition of edge ``eid`` (``-1`` = unassigned)."""
        if not 0 <= eid < len(self.parts):
            raise ConfigurationError(
                f"edge id {eid} out of range [0, {len(self.parts)})"
            )
        return int(self.parts[eid])

    def quality(self) -> dict[str, Any]:
        """The stored (stream-computed) quality summary."""
        return {
            "k": self.k,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "replication_factor": self.meta["replication_factor"],
            "edge_balance": self.meta["edge_balance"],
            "loads": [int(x) for x in self.loads],
            "tau": self.meta.get("tau"),
            "algorithm": self.meta.get("algorithm"),
        }

    def _build_cover(self) -> np.ndarray:
        """One streaming pass over the input → ``k × n`` bool cover."""
        from repro.stream.reader import open_edge_source

        source = (self.meta.get("spec") or {}).get("input", {}).get("path")
        if not source:
            raise ConfigurationError(
                "stored entry names no input path; vertex lookups need "
                "the original edge source"
            )
        chunk_size = (self.meta.get("spec") or {}).get("chunk_size", 65536)
        cover = np.zeros((self.k, self.num_vertices), dtype=bool)
        parts = self.parts
        for chunk in open_edge_source(source, chunk_size):
            p = parts[chunk.eids]
            mask = p >= 0
            if not mask.any():
                continue
            pm = p[mask]
            cover[pm, chunk.pairs[mask, 0]] = True
            cover[pm, chunk.pairs[mask, 1]] = True
        return cover

    def vertex_parts(self, vertex: int) -> list[int]:
        """Partitions whose edge set touches ``vertex`` (its replicas)."""
        if not 0 <= vertex < self.num_vertices:
            raise ConfigurationError(
                f"vertex {vertex} out of range [0, {self.num_vertices})"
            )
        with self._cover_lock:
            if self._cover is None:
                self._cover = self._build_cover()
        return [int(p) for p in np.flatnonzero(self._cover[:, vertex])]


class ArtifactCache:
    """LRU of :class:`AttachedArtifact` keyed by store cache key."""

    def __init__(self, store: ArtifactStore, capacity: int = 4) -> None:
        """Bind to ``store``; hold at most ``capacity`` attachments."""
        if capacity < 1:
            raise ConfigurationError(
                f"artifact cache capacity must be >= 1, got {capacity}"
            )
        self.store = store
        self.capacity = capacity
        self._entries: "OrderedDict[str, AttachedArtifact]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        """Number of artifacts currently attached."""
        with self._lock:
            return len(self._entries)

    def attach(self, key: str) -> AttachedArtifact:
        """Return the attached artifact for ``key``, loading on miss."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                return cached
        meta = self.store.read_meta(key)
        if meta is None:
            raise ReproError(f"no stored artifact for key {key}")
        entry = self.store.entry_path(key)
        parts = np.load(entry / "parts.npy")
        loads = np.load(entry / "loads.npy")
        artifact = AttachedArtifact(key, meta, parts, loads)
        with self._lock:
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return artifact

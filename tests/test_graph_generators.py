"""Tests for synthetic graph generators and the dataset registry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import describe
from repro.graph.datasets import DATASETS, available, env_scale, load
from repro.graph.generators import (
    barabasi_albert,
    chung_lu,
    community_web,
    erdos_renyi,
    grid2d,
    ring,
    rmat,
    star,
)


class TestGeneratorsBasic:
    def test_erdos_renyi_size(self):
        g = erdos_renyi(100, 300, seed=1)
        assert g.num_vertices == 100
        assert 200 <= g.num_edges <= 300

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(50, 100, seed=7)
        b = erdos_renyi(50, 100, seed=7)
        assert np.array_equal(a.edges, b.edges)

    def test_erdos_renyi_seed_changes_graph(self):
        a = erdos_renyi(50, 100, seed=7)
        b = erdos_renyi(50, 100, seed=8)
        assert not np.array_equal(a.edges, b.edges)

    def test_erdos_renyi_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi(1, 5)

    def test_chung_lu_power_law_skew(self):
        g = chung_lu(2000, mean_degree=10, exponent=2.2, seed=3)
        deg = g.degrees
        # Heavy tail: the max degree dwarfs the median.
        assert deg.max() > 10 * np.median(deg[deg > 0])

    def test_chung_lu_mean_degree_near_target(self):
        g = chung_lu(2000, mean_degree=10, seed=3)
        assert 4 <= g.mean_degree <= 10.5

    def test_chung_lu_validation(self):
        with pytest.raises(ConfigurationError):
            chung_lu(10, mean_degree=0)
        with pytest.raises(ConfigurationError):
            chung_lu(10, mean_degree=4, exponent=1.0)

    def test_barabasi_albert(self):
        g = barabasi_albert(500, attach=3, seed=2)
        assert g.num_vertices == 500
        # Each new vertex adds `attach` edges.
        assert g.num_edges >= (500 - 4) * 3
        # Early vertices accumulate high degree.
        assert g.degrees[:10].mean() > g.degrees[-100:].mean()

    def test_barabasi_albert_validation(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert(3, attach=3)

    def test_rmat_shape(self):
        g = rmat(scale=9, edge_factor=8, seed=4)
        assert g.num_vertices == 512
        assert g.num_edges > 512 * 4
        deg = g.degrees
        assert deg.max() > 8 * max(1.0, np.median(deg[deg > 0]))

    def test_rmat_validation(self):
        with pytest.raises(ConfigurationError):
            rmat(scale=1)
        with pytest.raises(ConfigurationError):
            rmat(scale=4, a=0.6, b=0.3, c=0.2)

    def test_star(self):
        g = star(10)
        assert g.num_edges == 9
        assert g.degrees[0] == 9
        assert (g.degrees[1:] == 1).all()

    def test_grid2d(self):
        g = grid2d(4, 5)
        assert g.num_vertices == 20
        assert g.num_edges == 4 * 4 + 3 * 5
        assert g.degrees.max() == 4

    def test_ring(self):
        g = ring(7)
        assert g.num_edges == 7
        assert (g.degrees == 2).all()

    def test_ring_validation(self):
        with pytest.raises(ConfigurationError):
            ring(2)

    def test_community_web_locality(self):
        g = community_web(8, 100, intra_mean_degree=8, inter_fraction=0.05, seed=5)
        assert g.num_vertices == 800
        assert g.num_edges > 1500

    def test_community_web_deterministic(self):
        a = community_web(4, 50, seed=5)
        b = community_web(4, 50, seed=5)
        assert np.array_equal(a.edges, b.edges)


class TestDatasets:
    def test_all_registered_load(self):
        for name in available():
            g = load(name, scale=0.25 if name not in ("WI",) else 1.0)
            assert g.num_edges > 100, name
            assert g.name == name

    def test_load_case_insensitive(self):
        g = load("lj", scale=0.5)
        assert g.name == "LJ"

    def test_unknown_dataset(self):
        with pytest.raises(ConfigurationError):
            load("NOPE")

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            load("LJ", scale=0)

    def test_registry_metadata(self):
        spec = DATASETS["TW"]
        assert spec.kind == "Social"
        assert "1.5 B" in spec.paper_edges

    def test_social_graphs_are_skewed(self):
        g = load("TW", scale=0.5)
        stats = describe(g)
        assert stats.skew > 5.0

    def test_env_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale() == 1.0
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert env_scale() == 2.5
        monkeypatch.setenv("REPRO_SCALE", "abc")
        with pytest.raises(ConfigurationError):
            env_scale()

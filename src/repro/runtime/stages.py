"""Stage implementations and the mutable run context they share.

The code here is the pipeline bodies that previously lived inside the
four driver classes (:class:`~repro.stream.driver.
StreamingPartitionerDriver`, :class:`~repro.stream.pipeline.OutOfCoreHep`,
:class:`~repro.stream.workers.MultiWorkerStreamingDriver`,
:class:`~repro.stream.workers.MultiWorkerHep`), moved behind the stage
registry so there is exactly one pipeline to register into.  Every
stage preserves the pre-PR 8 call order, kernel invocations, and trace
span names (``count_pass``/``select_tau``/``split_pass``/``phase_one``/
``stream_pass``/``metrics_pass``) — the property the equivalence and
observability suites pin bit for bit.

Stages take ``(spec, ctx, executor)``: the spec is frozen
configuration, the :class:`RunContext` carries the materializing state
(source, stats, CSR, spill, parts, ...), and the executor supplies the
strategy for the passes that have both an in-process and a worker-pool
form (:mod:`repro.runtime.executor`).
"""

from __future__ import annotations

import numpy as np

from repro.core.hep import HepPhaseBreakdown, phase_two_capacity
from repro.core.memory_model import hep_memory_bytes_from_entries
from repro.core.ne_plus_plus import run_ne_plus_plus_on_csr
from repro.core.tau import select_from_footprints
from repro.errors import PartitioningError
from repro.graph.csr import CsrGraph
from repro.obs.tracer import get_tracer
from repro.runtime.plan import register_stage
from repro.runtime.spec import JobSpec

__all__ = ["RunContext"]


class RunContext:
    """Mutable state one job accumulates as its stages run.

    Built by :func:`repro.runtime.api.run_job`; stages read what
    earlier stages provided and write what they produce.  ``pool``
    holds the warm :class:`~repro.stream.workers.PersistentWorkerPool`
    when the executor started one, ``spill`` the open
    :class:`~repro.stream.spill.SpillFile` between the split and
    stream stages.
    """

    def __init__(self, spec: JobSpec, source, algorithm=None) -> None:
        self.spec = spec
        #: the original source argument (path/Graph/open source)
        self.source = source
        #: the opened EdgeChunkSource (set by the runner)
        self.src = None
        #: streaming-algorithm adapter instance (streaming pipeline only)
        self.algorithm = algorithm
        #: warm worker pool, when the executor started one
        self.pool = None
        #: per-worker spill/shard segments (PoolExecutor)
        self.segments = None
        self.stats = None
        self.tau: float | None = None
        self.projected_memory_bytes: int | None = None
        self.high = None
        self.spill = None
        self.csr = None
        self.phase_one = None
        self.parts = None
        self.loads = None
        self.passes = 1
        self.num_h2h = 0
        self.spill_bytes = 0
        self.breakdown: HepPhaseBreakdown | None = None
        self.report = None
        self.replication_factor: float | None = None
        self.edge_balance: float | None = None
        self.executed: list[str] = []
        #: message for the empty-source error (driver-specific wording)
        self.empty_message = "edge stream is empty"

    def close(self) -> None:
        """Release run-scoped resources (the spill file, if still open)."""
        if self.spill is not None:
            self.spill.close()
            self.spill = None


# -- stages -----------------------------------------------------------------


@register_stage("count", provides=("stats",))
def stage_count(spec: JobSpec, ctx: RunContext, executor) -> None:
    """Counting pass: exact degrees, vertex universe, edge count."""
    ctx.stats = executor.scan_stats_pass(spec, ctx)
    if ctx.stats.num_edges == 0:
        raise PartitioningError(ctx.empty_message)


@register_stage("select_tau", provides=("tau", "high"))
def stage_select_tau(spec: JobSpec, ctx: RunContext, executor) -> None:
    """Resolve tau (fixed, budget-selected, or the 10.0 default)."""
    tracer = get_tracer()
    if spec.tau is not None:
        ctx.tau = spec.tau
    elif spec.memory_budget is not None:
        with tracer.span("select_tau", budget=spec.memory_budget):
            ctx.tau, ctx.projected_memory_bytes = _select_tau_from_budget(
                spec, ctx.src, ctx.stats, spec.k
            )
    else:
        ctx.tau = 10.0
    threshold = ctx.tau * ctx.stats.mean_degree
    ctx.high = ctx.stats.degrees > threshold


@register_stage("split", provides=("spill", "csr"))
def stage_split(spec: JobSpec, ctx: RunContext, executor) -> None:
    """Splitting pass: h2h chunks to the disk spill, the rest into CSR."""
    from repro.stream.spill import SpillFile

    tracer = get_tracer()
    ctx.spill = SpillFile(
        dir=spec.spill_dir, compression=spec.spill_compression
    )
    with tracer.span("split_pass", tau=ctx.tau) as span:
        ctx.csr = _split_and_build(ctx.src, ctx.stats, ctx.high, ctx.spill)
        span.add("edges_scanned", ctx.stats.num_edges)
        span.add("spill_bytes", ctx.spill.nbytes)


@register_stage("phase_one", provides=("phase_one", "parts", "loads"))
def stage_phase_one(spec: JobSpec, ctx: RunContext, executor) -> None:
    """Phase one: NE++ on the chunk-built pruned CSR."""
    tracer = get_tracer()
    with tracer.span("phase_one", k=spec.k):
        ctx.phase_one = run_ne_plus_plus_on_csr(ctx.csr, spec.k, tau=ctx.tau)
    ctx.parts = ctx.phase_one.parts
    ctx.loads = ctx.phase_one.loads.copy()


@register_stage("stream", provides=("parts", "loads", "passes", "breakdown"))
def stage_stream(spec: JobSpec, ctx: RunContext, executor) -> None:
    """Streaming phase: the spill read-back (HEP) or the source sweeps."""
    tracer = get_tracer()
    if ctx.spill is not None:
        # HEP pipeline: informed HDRF over the spilled h2h edges.
        if len(ctx.spill):
            with tracer.span("stream_pass", phase="spill") as span:
                ctx.loads = executor.stream_spill(spec, ctx)
                span.add("edges_scanned", len(ctx.spill))
                span.add("spill_bytes", ctx.spill.nbytes)
        ctx.spill_bytes = ctx.spill.nbytes
        ctx.num_h2h = len(ctx.spill)
        ctx.close()
        ctx.breakdown = HepPhaseBreakdown(
            num_edges=ctx.stats.num_edges,
            num_h2h_edges=ctx.num_h2h,
            num_inmemory_edges=ctx.stats.num_edges - ctx.num_h2h,
            cleanup_removed_fraction=(
                ctx.phase_one.stats.cleanup_removed_fraction
            ),
            spilled_edges=ctx.phase_one.stats.spilled_edges,
        )
    else:
        executor.stream_source(spec, ctx)


@register_stage("metrics", provides=("replication_factor", "edge_balance"))
def stage_metrics(spec: JobSpec, ctx: RunContext, executor) -> None:
    """Metrics pass: replication factor and edge balance over the source."""
    ctx.replication_factor, ctx.edge_balance = executor.scan_quality_pass(
        spec, ctx
    )


# -- HEP stage bodies (moved verbatim from stream/pipeline.py) --------------


def _select_tau_from_budget(
    spec: JobSpec, src, stats, k: int
) -> tuple[float, int]:
    """Largest grid ``tau`` whose projected footprint fits the budget.

    The per-tau column-entry counts (2 per low/low edge, 1 per mixed
    edge) are accumulated chunk by chunk — the streaming equivalent
    of :func:`~repro.core.memory_model.pruned_column_entries`.
    """
    taus = np.asarray(sorted(spec.tau_grid), dtype=np.float64)
    thresholds = taus * stats.mean_degree
    # (t, n) high-degree masks: one row per candidate tau.
    high = stats.degrees[None, :] > thresholds[:, None]
    entries = np.zeros(taus.size, dtype=np.int64)
    for chunk in src:
        hu = high[:, chunk.pairs[:, 0]]
        hv = high[:, chunk.pairs[:, 1]]
        low_low = (~hu & ~hv).sum(axis=1)
        mixed = (hu ^ hv).sum(axis=1)
        entries += 2 * low_low + mixed
    footprints = [
        hep_memory_bytes_from_entries(
            count, stats.num_vertices, k, spec.id_bytes
        )
        for count in entries.tolist()
    ]
    return select_from_footprints(
        taus.tolist(), footprints, spec.memory_budget
    )


def _split_and_build(src, stats, high: np.ndarray, spill) -> CsrGraph:
    """Splitting pass: h2h chunks to disk, kept chunks into the CSR."""
    kept_pairs: list[np.ndarray] = []
    kept_eids: list[np.ndarray] = []
    for chunk in src:
        hu = high[chunk.pairs[:, 0]]
        hv = high[chunk.pairs[:, 1]]
        h2h = hu & hv
        spill.append(chunk.pairs[h2h], chunk.eids[h2h])
        keep = ~h2h
        if keep.any():
            kept_pairs.append(chunk.pairs[keep])
            kept_eids.append(chunk.eids[keep])
    if kept_pairs:
        pairs = np.vstack(kept_pairs)
        eids = np.concatenate(kept_eids)
    else:
        pairs = np.empty((0, 2), dtype=np.int64)
        eids = np.empty(0, dtype=np.int64)
    return CsrGraph.from_arrays(
        num_vertices=stats.num_vertices,
        pairs=pairs,
        eids=eids,
        degrees=stats.degrees,
        high_mask=high,
        num_edges_total=stats.num_edges,
    )


def informed_phase_two_state(spec: JobSpec, ctx: RunContext):
    """Build the informed-HDRF state both phase-two strategies share."""
    from repro.partition.state import StreamingState

    capacity = phase_two_capacity(
        ctx.stats.num_edges, spec.k, spec.alpha, ctx.phase_one.loads
    )
    return StreamingState.informed_arrays(
        ctx.stats.num_vertices,
        ctx.stats.degrees,
        spec.k,
        capacity,
        replicas=ctx.phase_one.secondary,
        loads=ctx.phase_one.loads,
    )

"""Exception hierarchy for the HEP reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter is out of range or inconsistent (e.g. ``k < 2``)."""


class GraphFormatError(ReproError, ValueError):
    """An input edge list or graph file is malformed."""


class PartitioningError(ReproError, RuntimeError):
    """A partitioner could not produce a valid assignment."""


class CapacityError(PartitioningError):
    """No partition has room for an edge under the balance constraint."""


class WorkerFailureError(PartitioningError):
    """A partitioning worker process failed (died, hung, or reported an
    error); the message names the worker and the shard/segment it owned."""


class JobCancelledError(ReproError):
    """A runtime job was cancelled between planned stages.

    Raised by :func:`repro.runtime.api.run_job` when the caller-supplied
    cancellation event is set at a stage boundary; no partial artifact
    is persisted and the next identical submit recomputes cleanly.
    """


class ValidationError(ReproError, AssertionError):
    """A partitioning result violates a structural invariant."""


class TraceFormatError(ReproError, ValueError):
    """A trace file or profile record is malformed or fails its schema."""

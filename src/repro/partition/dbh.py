"""DBH: Degree-Based Hashing (stateless streaming).

Xie et al. (NIPS'14).  Each edge is assigned by hashing the id of its
*lower-degree* endpoint, which concentrates the cut on high-degree
vertices — the ones that power-law theory says will be replicated
anyway.  ``Θ(|E|)`` time, no state beyond the degree array; the fastest
baseline in the paper (and the one that wins Table 4's short jobs).

The whole pass is vectorized: ties and hashing are computed for all
edges at once.  Capacity overflow (rare, since hashing is near-balanced)
is repaired by moving surplus edges to underfull partitions.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound

__all__ = ["DbhPartitioner", "hash_vertices", "dbh_assign", "repair_overflow"]

_KNUTH = np.uint64(2654435761)
_MASK = np.uint64(0xFFFFFFFF)


def hash_vertices(ids: np.ndarray, salt: int = 0) -> np.ndarray:
    """Deterministic 32-bit multiplicative hash of vertex ids."""
    x = ids.astype(np.uint64) + np.uint64(salt)
    x = (x * _KNUTH) & _MASK
    x ^= x >> np.uint64(16)
    x = (x * np.uint64(0x45D9F3B)) & _MASK
    x ^= x >> np.uint64(16)
    return x


def dbh_assign(
    pairs: np.ndarray, degrees: np.ndarray, k: int, salt: int = 0
) -> np.ndarray:
    """Degree-based-hashing partition of a block of ``(u, v)`` pairs.

    Pure elementwise function of each edge and the (exact) degree array,
    so a chunked pass over an edge stream produces exactly the same
    assignments as one vectorized pass over the full edge list — which
    is how the out-of-core driver reuses it.
    """
    u, v = pairs[:, 0], pairs[:, 1]
    du, dv = degrees[u], degrees[v]
    # Hash the endpoint with the smaller degree; break ties by id so
    # the choice is deterministic across runs.
    pick_u = (du < dv) | ((du == dv) & (u < v))
    chosen = np.where(pick_u, u, v)
    return (hash_vertices(chosen, salt) % np.uint64(k)).astype(np.int32)


class DbhPartitioner(Partitioner):
    """Degree-based hashing baseline."""

    def __init__(self, alpha: float = 1.0, salt: int = 0) -> None:
        self.alpha = alpha
        self.salt = salt
        self.name = "DBH"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Hash every edge to a partition; repair rare capacity overflow."""
        self._require_k(graph, k)
        parts = dbh_assign(graph.edges, graph.degrees, k, self.salt)
        capacity = capacity_bound(graph.num_edges, k, self.alpha)
        parts = repair_overflow(parts, k, capacity)
        return PartitionAssignment(graph, k, parts)


def repair_overflow(parts: np.ndarray, k: int, capacity: int) -> np.ndarray:
    """Move surplus edges from overfull to underfull partitions.

    Hashing occasionally lands a few edges over the hard bound; the repair
    keeps the assignment valid without changing its character.
    """
    sizes = np.bincount(parts, minlength=k)
    if (sizes <= capacity).all():
        return parts
    parts = parts.copy()
    space = capacity - sizes
    underfull = [p for p in range(k) if space[p] > 0]
    cursor = 0
    for p in np.flatnonzero(sizes > capacity):
        surplus_edges = np.flatnonzero(parts == p)[capacity:]
        for e in surplus_edges:
            while space[underfull[cursor]] == 0:
                cursor += 1
            target = underfull[cursor]
            parts[e] = target
            space[target] -= 1
    return parts

"""Extension experiments beyond the paper's evaluation.

Two directions the paper names and this library implements:

* **Hypergraphs** (Section 7 future work): the hybrid
  threshold+expansion+informed-streaming recipe applied to hyperedge
  partitioning, against a pure streaming min-max baseline.
* **Restreaming** (Section 6 related work): multi-pass HDRF attacks the
  same uninformed-assignment problem HEP solves with its in-memory
  phase; this measures quality-per-pass next to HEP's quality.
"""

from __future__ import annotations

import time

from repro.core import HepPartitioner
from repro.experiments.common import ExperimentResult, load_dataset
from repro.hypergraph import (
    HybridHypergraphPartitioner,
    MinMaxStreamingHypergraphPartitioner,
    clustered_hypergraph,
    hyper_replication_factor,
    powerlaw_hypergraph,
)
from repro.metrics import replication_factor
from repro.partition import HdrfPartitioner, RestreamingHdrfPartitioner

__all__ = ["run"]


def run(k: int = 8) -> ExperimentResult:
    rows: list[dict[str, object]] = []
    rows.extend(_hypergraph_rows(k))
    rows.extend(_restreaming_rows(k))
    result = ExperimentResult(
        experiment_id="extensions",
        title="Extensions: hybrid hypergraph partitioning + restreaming",
        rows=rows,
        paper_shape="future work (Section 7): the hybrid paradigm carries"
        " over to hypergraphs; related work (Section 6): restreaming"
        " narrows but does not close the gap to HEP",
    )
    _annotate(result)
    return result


def _hypergraph_rows(k: int) -> list[dict[str, object]]:
    rows = []
    corpora = {
        "HG-powerlaw": powerlaw_hypergraph(1500, 2500, mean_pins=4, seed=11),
        "HG-clustered": clustered_hypergraph(10, 60, 150, crossover=0.04, seed=12),
    }
    for name, hg in corpora.items():
        for label, partitioner in (
            ("HybridHG-10", HybridHypergraphPartitioner(tau=10.0)),
            ("HybridHG-1", HybridHypergraphPartitioner(tau=1.0)),
            ("MinMaxStream", MinMaxStreamingHypergraphPartitioner()),
        ):
            start = time.perf_counter()
            parts = partitioner.partition(hg, k)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "experiment": "hypergraph",
                    "workload": name,
                    "method": label,
                    "RF": round(hyper_replication_factor(hg, parts, k), 3),
                    "time_s": round(elapsed, 3),
                }
            )
    return rows


def _restreaming_rows(k: int) -> list[dict[str, object]]:
    rows = []
    graph = load_dataset("OK")
    for label, partitioner in (
        ("HDRF (1 pass)", HdrfPartitioner()),
        ("ReHDRF-2", RestreamingHdrfPartitioner(passes=2)),
        ("ReHDRF-3", RestreamingHdrfPartitioner(passes=3)),
        ("HEP-10", HepPartitioner(tau=10.0)),
    ):
        start = time.perf_counter()
        assignment = partitioner.partition(graph, k)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "experiment": "restreaming",
                "workload": "OK",
                "method": label,
                "RF": round(replication_factor(assignment), 3),
                "time_s": round(elapsed, 3),
            }
        )
    return rows


def _annotate(result: ExperimentResult) -> None:
    hyper = {
        (str(r["workload"]), str(r["method"])): float(r["RF"])
        for r in result.rows
        if r["experiment"] == "hypergraph"
    }
    clustered_win = (
        hyper[("HG-clustered", "HybridHG-10")] < hyper[("HG-clustered", "MinMaxStream")]
    )
    result.notes.append(
        f"hybrid beats streaming on the clustered hypergraph: {clustered_win}"
    )
    restream = {
        str(r["method"]): float(r["RF"])
        for r in result.rows
        if r["experiment"] == "restreaming"
    }
    ordered = (
        restream["ReHDRF-3"] <= restream["ReHDRF-2"] <= restream["HDRF (1 pass)"]
    )
    hep_best = restream["HEP-10"] <= restream["ReHDRF-3"]
    result.notes.append(
        f"each restreaming pass helps: {ordered}; HEP still ahead of"
        f" 3-pass restreaming: {hep_best}"
    )

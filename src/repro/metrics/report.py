"""Result reporting: per-run summaries and plain-text tables.

The experiment harness and the CLI both print the same row format, so a
single report type keeps every table in the repository consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.balance import edge_balance, vertex_balance
from repro.metrics.replication import replication_factor
from repro.partition.base import PartitionAssignment, TimedResult

__all__ = ["PartitionReport", "summarize", "format_table"]


@dataclass(frozen=True)
class PartitionReport:
    """One partitioning run reduced to the paper's reported quantities."""

    partitioner: str
    graph: str
    k: int
    replication_factor: float
    alpha: float
    vertex_balance: float
    runtime_s: float
    memory_bytes: int | None = None

    def row(self) -> dict[str, object]:
        """Render the report as one table row (rounded display values)."""
        row: dict[str, object] = {
            "partitioner": self.partitioner,
            "graph": self.graph,
            "k": self.k,
            "RF": round(self.replication_factor, 3),
            "alpha": round(self.alpha, 3),
            "vbal": round(self.vertex_balance, 3),
            "time_s": round(self.runtime_s, 3),
        }
        if self.memory_bytes is not None:
            row["mem_MiB"] = round(self.memory_bytes / 2**20, 2)
        return row


def summarize(result: TimedResult) -> PartitionReport:
    """Reduce a timed partitioning run to a :class:`PartitionReport`."""
    assignment: PartitionAssignment = result.assignment
    return PartitionReport(
        partitioner=result.partitioner,
        graph=assignment.graph.name,
        k=assignment.k,
        replication_factor=replication_factor(assignment),
        alpha=edge_balance(assignment),
        vertex_balance=vertex_balance(assignment),
        runtime_s=result.runtime_s,
        memory_bytes=result.memory_bytes,
    )


def format_table(rows: list[dict[str, object]], title: str = "") -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)

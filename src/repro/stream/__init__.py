"""Out-of-core streaming I/O: chunked edge pipelines for memory-bounded HEP.

The seed reproduction simulated the paper's memory knob — every code
path still materialized the full edge list in RAM.  This package makes
the constraint real:

* :mod:`repro.stream.reader` — chunked :class:`EdgeChunkSource` blocks
  from text/binary edge files, dataset names or in-memory graphs,
* :mod:`repro.stream.spill` — the disk-backed h2h edge file NE++
  appends to instead of holding high/high edges in RAM,
* :mod:`repro.stream.buffered` — a buffered scoring window for phase
  two (quality/throughput knob ``buffer_size``),
* :mod:`repro.stream.pipeline` — :class:`OutOfCoreHep`, chaining the
  pieces under an explicit byte budget from
  :mod:`repro.core.memory_model`.
"""

from repro.stream.buffered import buffered_hdrf_stream, stream_chunks_through_hdrf
from repro.stream.pipeline import OutOfCoreHep, OutOfCoreResult, scan_source
from repro.stream.reader import (
    DEFAULT_CHUNK_SIZE,
    BinaryFileEdgeSource,
    EdgeChunk,
    EdgeChunkSource,
    InMemoryEdgeSource,
    TextFileEdgeSource,
    open_edge_source,
)
from repro.stream.spill import SpillFile

__all__ = [
    "EdgeChunk",
    "EdgeChunkSource",
    "InMemoryEdgeSource",
    "BinaryFileEdgeSource",
    "TextFileEdgeSource",
    "open_edge_source",
    "DEFAULT_CHUNK_SIZE",
    "SpillFile",
    "buffered_hdrf_stream",
    "stream_chunks_through_hdrf",
    "OutOfCoreHep",
    "OutOfCoreResult",
    "scan_source",
]

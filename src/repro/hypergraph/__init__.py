"""Hybrid hypergraph partitioning — the paper's future-work extension."""

from repro.hypergraph.container import Hypergraph
from repro.hypergraph.generators import clustered_hypergraph, powerlaw_hypergraph
from repro.hypergraph.hybrid import (
    HybridHypergraphPartitioner,
    MinMaxStreamingHypergraphPartitioner,
    split_hyperedges,
)
from repro.hypergraph.metrics import (
    assert_valid_hyper,
    hyper_balance,
    hyper_cover_matrix,
    hyper_replication_factor,
)

__all__ = [
    "Hypergraph",
    "powerlaw_hypergraph",
    "clustered_hypergraph",
    "HybridHypergraphPartitioner",
    "MinMaxStreamingHypergraphPartitioner",
    "split_hyperedges",
    "hyper_replication_factor",
    "hyper_balance",
    "hyper_cover_matrix",
    "assert_valid_hyper",
]

#!/usr/bin/env python
"""Quickstart: partition a power-law graph with HEP and inspect quality.

Runs the whole pipeline on the Orkut stand-in dataset:

1. load a graph,
2. partition its edges into k=32 balanced parts with HEP at tau=10,
3. report the paper's metrics (replication factor, balance, run-time),
4. show what the tau knob trades away, by comparing three settings.

Run:  python examples/quickstart.py
"""

import time

from repro import (
    HepPartitioner,
    assert_valid,
    datasets,
    edge_balance,
    hep_memory_bytes,
    replication_factor,
)


def main() -> None:
    graph = datasets.load("OK")
    print(f"graph: {graph!r}")

    k = 32
    print(f"\npartitioning into k={k} with HEP (tau=10) ...")
    partitioner = HepPartitioner(tau=10.0)
    start = time.perf_counter()
    assignment = partitioner.partition(graph, k)
    elapsed = time.perf_counter() - start

    assert_valid(assignment, alpha=1.0)  # hard structural guarantees
    print(f"  replication factor : {replication_factor(assignment):.3f}")
    print(f"  edge balance alpha : {edge_balance(assignment):.3f}")
    print(f"  run-time           : {elapsed:.2f}s")
    breakdown = partitioner.last_breakdown
    print(f"  edges streamed     : {breakdown.num_h2h_edges:,} "
          f"({breakdown.h2h_fraction:.1%} of the graph)")

    print("\nthe tau knob (quality vs memory):")
    print(f"  {'tau':>6} | {'RF':>6} | {'model memory':>12} | {'streamed':>8}")
    for tau in (100.0, 10.0, 1.0):
        p = HepPartitioner(tau=tau)
        a = p.partition(graph, k)
        memory = hep_memory_bytes(graph, tau, k)
        print(
            f"  {tau:>6g} | {replication_factor(a):>6.3f} |"
            f" {memory / 2**20:>10.2f}Mi |"
            f" {p.last_breakdown.h2h_fraction:>8.1%}"
        )
    print("\nlower tau -> less memory, more streaming, higher RF — the")
    print("trade-off Figure 8 of the paper sweeps.")


if __name__ == "__main__":
    main()

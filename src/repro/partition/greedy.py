"""Greedy streaming vertex-cut (PowerGraph's heuristic).

Gonzalez et al. (OSDI'12).  One pass over the edge stream; each edge is
placed by the case analysis in
:func:`~repro.partition.scoring.greedy_choose`.  The paper lists Greedy
as a stateful streaming baseline that HDRF consistently outperforms.

The per-edge loop lives in :func:`greedy_stream` so the in-memory
partitioner and the out-of-core driver (:mod:`repro.stream.driver`)
share one code path — the basis of their bit-identity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError
from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.scoring import greedy_choose
from repro.partition.state import StreamingState

__all__ = ["GreedyPartitioner", "greedy_stream"]


def greedy_stream(
    state: StreamingState,
    remaining: np.ndarray,
    edges: np.ndarray,
    eids: np.ndarray,
    parts_out: np.ndarray,
) -> None:
    """Stream a block of ``edges`` through the greedy heuristic.

    Mutates ``state`` and the per-vertex unassigned-edge counters
    ``remaining`` (case 2 of the heuristic), and fills
    ``parts_out[eids[i]]`` for every streamed edge.  Feeding the whole
    edge array reproduces the single-pass in-memory baseline; feeding
    successive chunks against shared state is the out-of-core path.
    """
    for i in range(edges.shape[0]):
        u = int(edges[i, 0])
        v = int(edges[i, 1])
        p = greedy_choose(state, u, v, int(remaining[u]), int(remaining[v]))
        if p < 0:
            raise CapacityError("Greedy: all partitions at capacity")
        state.place(u, v, p)
        remaining[u] -= 1
        remaining[v] -= 1
        parts_out[eids[i]] = p


class GreedyPartitioner(Partitioner):
    """PowerGraph greedy edge placement."""

    def __init__(self, alpha: float = 1.0, shuffle: bool = False, seed: int = 0) -> None:
        self.alpha = alpha
        self.shuffle = shuffle
        self.seed = seed
        self.name = "Greedy"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        """Place every edge of ``graph`` with the greedy case analysis."""
        self._require_k(graph, k)
        capacity = capacity_bound(graph.num_edges, k, self.alpha)
        state = StreamingState.fresh(graph, k, capacity, use_exact_degrees=True)
        assignment = PartitionAssignment.empty(graph, k)

        # Unassigned-edge counters drive case 2 of the heuristic.
        remaining = graph.degrees.copy()

        order = np.arange(graph.num_edges)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(order)
            edges = graph.edges[order]
        else:
            edges = graph.edges  # natural order: no O(m) copy
        greedy_stream(state, remaining, edges, order, assignment.parts)
        return assignment

"""Compressed sparse row (CSR) graph representation with lazy edge removal.

This is the data structure of the paper's Figure 4:

* every *kept* undirected edge ``(u, v)`` appears as an **out-entry** in
  ``u``'s adjacency list and an **in-entry** in ``v``'s adjacency list,
* each vertex's adjacency list is split into ``[out-entries | in-entries]``
  with two index arrays (one per sub-list), so the last-partition sweep
  (Algorithm 3) can assign low/low edges from the left-hand vertex only,
* each sub-list carries a ``size`` field counting its *valid* prefix;
  removing an entry swaps it with the last valid entry and decrements the
  size — the constant-time "lazy edge removal" of Section 3.2.2,
* a parallel ``eid`` array maps every column entry back to the canonical
  edge id, so partition assignments can be recorded exactly once per edge.

When built with a high-degree mask (the pruned representation of Section
3.2.1), high-degree vertices get *no* adjacency lists: a low/high edge is
reachable only through the low-degree endpoint, and high/high edges are
diverted to :attr:`CsrGraph.h2h_edges` — the "external memory edge file"
that HEP later partitions by streaming.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edgelist import Graph

__all__ = ["CsrGraph", "ExternalEdges"]


@dataclass(frozen=True)
class ExternalEdges:
    """Edges diverted out of memory at CSR build time (the h2h edges)."""

    pairs: np.ndarray  # (m_h2h, 2) oriented edge endpoints
    eids: np.ndarray   # (m_h2h,) canonical edge ids

    @property
    def num_edges(self) -> int:
        """Number of h2h edges held in this buffer."""
        return int(self.pairs.shape[0])

    def nbytes_binary(self) -> int:
        """Size as a 32-bit binary edge list (what HEP writes to disk)."""
        return self.num_edges * 2 * 4


def _grouped_positions(owners: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Target slots for entries to be packed per owning vertex.

    For each entry ``i``, the result is ``starts[owners[i]] + rank``, where
    ``rank`` is ``i``'s position among entries of the same owner (stable).
    """
    if owners.size == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(owners, kind="stable")
    sorted_owners = owners[order]
    is_first = np.empty(owners.size, dtype=bool)
    is_first[0] = True
    is_first[1:] = sorted_owners[1:] != sorted_owners[:-1]
    run_id = np.cumsum(is_first) - 1
    run_start = np.flatnonzero(is_first)
    rank = np.arange(owners.size, dtype=np.int64) - run_start[run_id]
    positions = np.empty(owners.size, dtype=np.int64)
    positions[order] = starts[sorted_owners] + rank
    return positions


class CsrGraph:
    """Mutable CSR over a :class:`Graph`, optionally pruned.

    The arrays are public on purpose — the partitioning hot loops index
    them directly.  All mutation goes through the removal methods so the
    valid-prefix invariant holds.

    Attributes
    ----------
    col, eid:
        Column array (neighbor ids) and the parallel canonical edge ids.
    out_start, out_size, in_start, in_size:
        Per-vertex sub-list windows.  The *capacity* of the out sub-list of
        ``v`` is ``in_start[v] - out_start[v]`` and never changes; ``size``
        fields shrink as edges are removed.
    degrees:
        Full original degrees (including pruned h2h edges) — the paper's
        streaming phase and threshold computations use true degrees.
    high_mask:
        Boolean array marking high-degree vertices (all ``False`` for an
        unpruned build).
    h2h_edges:
        :class:`ExternalEdges` holding the diverted high/high edges.
    """

    def __init__(
        self,
        num_vertices: int,
        col: np.ndarray,
        eid: np.ndarray,
        out_start: np.ndarray,
        out_size: np.ndarray,
        in_start: np.ndarray,
        in_size: np.ndarray,
        degrees: np.ndarray,
        high_mask: np.ndarray,
        h2h_edges: ExternalEdges,
        num_edges_total: int,
        num_csr_edges: int | None = None,
    ) -> None:
        self.num_vertices = num_vertices
        self.col = col
        self.eid = eid
        self.out_start = out_start
        self.out_size = out_size
        self.in_start = in_start
        self.in_size = in_size
        self.degrees = degrees
        self.high_mask = high_mask
        self.h2h_edges = h2h_edges
        self.num_edges_total = num_edges_total
        # When the h2h edges were diverted to disk (repro.stream.spill),
        # h2h_edges is empty and the kept-edge count is supplied directly.
        self._num_csr_edges = (
            num_edges_total - h2h_edges.num_edges
            if num_csr_edges is None
            else int(num_csr_edges)
        )

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, graph: Graph, high_mask: np.ndarray | None = None) -> "CsrGraph":
        """Build the (optionally pruned) CSR in two vectorized passes.

        This follows the paper's graph-building procedure (Section 4.1):
        pass one computes degrees and index arrays; pass two scatters the
        edges into the column array or the external h2h buffer.
        """
        n = graph.num_vertices
        edges = graph.edges
        u, v = edges[:, 0], edges[:, 1]
        degrees = graph.degrees.copy()

        if high_mask is None:
            high_mask = np.zeros(n, dtype=bool)
        else:
            high_mask = np.asarray(high_mask, dtype=bool)
            if high_mask.shape != (n,):
                raise GraphFormatError("high_mask must have one flag per vertex")

        h2h = high_mask[u] & high_mask[v]
        keep = ~h2h
        eids_all = np.arange(graph.num_edges, dtype=np.int64)
        external = ExternalEdges(pairs=edges[h2h].copy(), eids=eids_all[h2h])

        return cls.from_arrays(
            num_vertices=n,
            pairs=edges[keep],
            eids=eids_all[keep],
            degrees=degrees,
            high_mask=high_mask,
            num_edges_total=graph.num_edges,
            external=external,
        )

    @classmethod
    def from_arrays(
        cls,
        num_vertices: int,
        pairs: np.ndarray,
        eids: np.ndarray,
        degrees: np.ndarray,
        high_mask: np.ndarray,
        num_edges_total: int,
        external: ExternalEdges | None = None,
    ) -> "CsrGraph":
        """Build a CSR from the *kept* (non-h2h) edges given explicitly.

        This is the out-of-core construction path (:mod:`repro.stream`):
        the caller accumulated ``pairs``/``eids`` chunk by chunk, diverting
        h2h edges to a spill file along the way, so no full in-memory
        :class:`Graph` ever exists.  ``pairs`` must not contain an edge
        whose endpoints are both flagged in ``high_mask``; ``degrees`` are
        the *true* degrees over all ``num_edges_total`` edges, including
        the diverted ones.  ``external`` defaults to an empty edge set (the
        diverted edges live on disk).
        """
        n = int(num_vertices)
        pairs = np.ascontiguousarray(pairs, dtype=np.int64).reshape(-1, 2)
        eids = np.ascontiguousarray(eids, dtype=np.int64)
        if eids.shape != (pairs.shape[0],):
            raise GraphFormatError("eids must parallel pairs")
        high_mask = np.asarray(high_mask, dtype=bool)
        if high_mask.shape != (n,):
            raise GraphFormatError("high_mask must have one flag per vertex")
        if external is None:
            external = ExternalEdges(
                pairs=np.empty((0, 2), dtype=np.int64),
                eids=np.empty(0, dtype=np.int64),
            )
        ku, kv, keid = pairs[:, 0], pairs[:, 1], eids
        # An out-entry exists at u unless u is pruned; same for the in-entry.
        out_entry = ~high_mask[ku]
        in_entry = ~high_mask[kv]

        out_counts = np.bincount(ku[out_entry], minlength=n).astype(np.int64)
        in_counts = np.bincount(kv[in_entry], minlength=n).astype(np.int64)
        caps = out_counts + in_counts
        out_start = np.zeros(n, dtype=np.int64)
        if n:
            out_start[1:] = np.cumsum(caps)[:-1]
        in_start = out_start + out_counts

        total = int(caps.sum())
        col = np.empty(total, dtype=np.int64)
        eid = np.empty(total, dtype=np.int64)

        pos = _grouped_positions(ku[out_entry], out_start)
        col[pos] = kv[out_entry]
        eid[pos] = keid[out_entry]
        pos = _grouped_positions(kv[in_entry], in_start)
        col[pos] = ku[in_entry]
        eid[pos] = keid[in_entry]

        return cls(
            num_vertices=n,
            col=col,
            eid=eid,
            out_start=out_start,
            out_size=out_counts.copy(),
            in_start=in_start,
            in_size=in_counts.copy(),
            degrees=np.asarray(degrees, dtype=np.int64),
            high_mask=high_mask,
            h2h_edges=external,
            num_edges_total=int(num_edges_total),
            num_csr_edges=int(pairs.shape[0]),
        )

    # -- read access ---------------------------------------------------------

    @property
    def num_csr_edges(self) -> int:
        """Number of undirected edges represented in the column array."""
        return self._num_csr_edges

    @property
    def is_pruned(self) -> bool:
        """True when any vertex is flagged high-degree (entries pruned)."""
        return bool(self.high_mask.any())

    def out_view(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Valid out-entries of ``v``: ``(neighbors, edge_ids)`` views."""
        s, e = self.out_start[v], self.out_start[v] + self.out_size[v]
        return self.col[s:e], self.eid[s:e]

    def in_view(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Valid in-entries of ``v``: ``(neighbors, edge_ids)`` views."""
        s, e = self.in_start[v], self.in_start[v] + self.in_size[v]
        return self.col[s:e], self.eid[s:e]

    def neighbors(self, v: int) -> np.ndarray:
        """All valid neighbors of ``v`` (out then in; copies)."""
        out_n, _ = self.out_view(v)
        in_n, _ = self.in_view(v)
        return np.concatenate([out_n, in_n])

    def adjacency(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """All valid ``(neighbors, edge_ids)`` of ``v`` (concatenated copy)."""
        out_n, out_e = self.out_view(v)
        in_n, in_e = self.in_view(v)
        return np.concatenate([out_n, in_n]), np.concatenate([out_e, in_e])

    def valid_degree(self, v: int) -> int:
        """Number of valid (unremoved) entries in ``v``'s adjacency list."""
        return int(self.out_size[v] + self.in_size[v])

    def column_bytes(self, id_bytes: int = 4) -> int:
        """Byte size of the column array at paper id width (Section 4.2)."""
        return int(self.col.size) * id_bytes

    # -- lazy removal ----------------------------------------------------------

    def remove_marked(self, v: int, marked: np.ndarray) -> int:
        """Remove every entry of ``v`` whose neighbor is flagged in ``marked``.

        This is the inner operation of the clean-up pass (Algorithm 2):
        ``marked`` is the ``C ∪ S_i`` membership mask.  Both sub-lists are
        compacted in place; returns the number of removed entries.
        """
        removed = 0
        for start_arr, size_arr in (
            (self.out_start, self.out_size),
            (self.in_start, self.in_size),
        ):
            s = start_arr[v]
            size = size_arr[v]
            if size == 0:
                continue
            window = slice(s, s + size)
            entries = self.col[window]
            keep = ~marked[entries]
            kept = int(keep.sum())
            if kept != size:
                self.col[s : s + kept] = entries[keep]
                self.eid[s : s + kept] = self.eid[window][keep]
                size_arr[v] = kept
                removed += size - kept
        return removed

    def remove_edge_entry(self, v: int, neighbor: int, edge_id: int) -> bool:
        """Swap-remove the entry for ``edge_id`` from ``v``'s lists.

        Returns ``True`` if an entry was found and removed.  Used by the
        *eager* NE baseline; NE++ uses :meth:`remove_marked` instead.
        """
        for start_arr, size_arr in (
            (self.out_start, self.out_size),
            (self.in_start, self.in_size),
        ):
            s = start_arr[v]
            size = size_arr[v]
            window = self.eid[s : s + size]
            hits = np.flatnonzero(window == edge_id)
            if hits.size:
                slot = s + int(hits[0])
                last = s + size - 1
                self.col[slot] = self.col[last]
                self.eid[slot] = self.eid[last]
                size_arr[v] = size - 1
                return True
        return False

    # -- integrity -------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate structural invariants (tests and debugging only)."""
        n = self.num_vertices
        assert self.out_size.min(initial=0) >= 0
        assert self.in_size.min(initial=0) >= 0
        for v in range(n):
            out_cap = self.in_start[v] - self.out_start[v]
            end = self.out_start[v + 1] if v + 1 < n else self.col.size
            in_cap = end - self.in_start[v]
            assert 0 <= self.out_size[v] <= out_cap, f"out window of {v}"
            assert 0 <= self.in_size[v] <= in_cap, f"in window of {v}"
            if self.high_mask[v]:
                assert out_cap == 0 and in_cap == 0, f"pruned vertex {v} has entries"
        # Every valid eid must reference this vertex's edge.
        for v in range(n):
            for nbrs, eids in (self.out_view(v), self.in_view(v)):
                for u, e in zip(nbrs.tolist(), eids.tolist()):
                    assert 0 <= u < n
                    assert 0 <= e < self.num_edges_total

    def __repr__(self) -> str:
        return (
            f"CsrGraph(n={self.num_vertices:,}, csr_edges={self.num_csr_edges:,}, "
            f"h2h_edges={self.h2h_edges.num_edges:,}, pruned={self.is_pruned})"
        )

"""Ablations of HEP's design choices (DESIGN.md §3 / paper §3.2–3.3).

Three questions the paper answers qualitatively, measured head-to-head:

* **A1 — informed streaming.** Phase two with the NE++ replica hand-over
  vs. the same HDRF stream starting cold.  Isolates Section 3.3's
  "overcoming the uninformed assignment problem".
* **A2 — lazy vs. eager bookkeeping.** NE++ vs. reference-style NE on
  identical (unpruned) edge sets: run-time and the Section 4.2 memory
  model with/without the auxiliary edge list.
* **A3 — sequential vs. randomized seed scan.** Section 3.2.3's
  initialization against the reference implementation's randomized
  selection.
"""

from __future__ import annotations

import time

from repro.core import HepPartitioner, ne_memory_bytes, ne_plus_plus_memory_bytes
from repro.core.ne_plus_plus import run_ne_plus_plus
from repro.experiments.common import ExperimentResult, load_dataset
from repro.metrics import replication_factor
from repro.partition import NePartitioner, PartitionAssignment

__all__ = ["run"]

_GRAPHS = ("OK", "IT")


def run(graphs: tuple[str, ...] = _GRAPHS, k: int = 32) -> ExperimentResult:
    rows: list[dict[str, object]] = []
    for name in graphs:
        graph = load_dataset(name)
        rows.extend(_informed_ablation(graph, name, k))
        rows.extend(_bookkeeping_ablation(graph, name, k))
        rows.extend(_seed_ablation(graph, name, k))
    result = ExperimentResult(
        experiment_id="ablations",
        title=f"Design-choice ablations (k={k})",
        rows=rows,
        paper_shape="informed streaming lowers RF at low tau; NE++ beats NE"
        " on time and memory at equal quality; sequential seeding matches"
        " random quality without its rejection cost",
    )
    _annotate(result, graphs)
    return result


def _informed_ablation(graph, name: str, k: int) -> list[dict[str, object]]:
    rows = []
    for tau in (1.0, 0.5):
        for informed in (True, False):
            partitioner = HepPartitioner(tau=tau, informed=informed)
            assignment = partitioner.partition(graph, k)
            rows.append(
                {
                    "ablation": "A1-informed-streaming",
                    "graph": name,
                    "variant": f"tau={tau:g} informed={informed}",
                    "RF": round(replication_factor(assignment), 3),
                    "time_s": "-",
                    "mem_MiB": "-",
                }
            )
    return rows


def _bookkeeping_ablation(graph, name: str, k: int) -> list[dict[str, object]]:
    start = time.perf_counter()
    nepp = run_ne_plus_plus(graph, k)
    t_nepp = time.perf_counter() - start
    rf_nepp = replication_factor(PartitionAssignment(graph, k, nepp.parts))

    ne = NePartitioner()
    start = time.perf_counter()
    a_ne = ne.partition(graph, k)
    t_ne = time.perf_counter() - start
    return [
        {
            "ablation": "A2-bookkeeping",
            "graph": name,
            "variant": "NE++ (lazy removal)",
            "RF": round(rf_nepp, 3),
            "time_s": round(t_nepp, 3),
            "mem_MiB": round(ne_plus_plus_memory_bytes(graph, k) / 2**20, 3),
        },
        {
            "ablation": "A2-bookkeeping",
            "graph": name,
            "variant": "NE (eager aux list)",
            "RF": round(replication_factor(a_ne), 3),
            "time_s": round(t_ne, 3),
            "mem_MiB": round(ne_memory_bytes(graph, k) / 2**20, 3),
        },
    ]


def _seed_ablation(graph, name: str, k: int) -> list[dict[str, object]]:
    rows = []
    for order in ("sequential", "random"):
        start = time.perf_counter()
        result = run_ne_plus_plus(graph, k, seed_order=order, seed=3)
        elapsed = time.perf_counter() - start
        rf = replication_factor(PartitionAssignment(graph, k, result.parts))
        rows.append(
            {
                "ablation": "A3-seed-scan",
                "graph": name,
                "variant": order,
                "RF": round(rf, 3),
                "time_s": round(elapsed, 3),
                "mem_MiB": "-",
            }
        )
    return rows


def _annotate(result: ExperimentResult, graphs: tuple[str, ...]) -> None:
    for name in graphs:
        a1 = {
            str(r["variant"]): float(r["RF"])
            for r in result.rows
            if r["ablation"] == "A1-informed-streaming" and r["graph"] == name
        }
        # 5% tolerance: on locality-heavy graphs at extreme tau the two
        # variants can land within noise of each other.
        informed_wins = all(
            a1[f"tau={t:g} informed=True"]
            <= a1[f"tau={t:g} informed=False"] * 1.05
            for t in (1.0, 0.5)
        )
        a2 = {
            str(r["variant"]): r
            for r in result.rows
            if r["ablation"] == "A2-bookkeeping" and r["graph"] == name
        }
        nepp, ne = a2["NE++ (lazy removal)"], a2["NE (eager aux list)"]
        a3 = {
            str(r["variant"]): float(r["RF"])
            for r in result.rows
            if r["ablation"] == "A3-seed-scan" and r["graph"] == name
        }
        result.notes.append(
            f"{name}: informed streaming never worse={informed_wins}; "
            f"NE++ memory < NE={float(nepp['mem_MiB']) < float(ne['mem_MiB'])}; "
            f"NE++ quality ~ NE={abs(float(nepp['RF']) - float(ne['RF'])) < 0.5}; "
            f"sequential ~ random seeding="
            f"{abs(a3['sequential'] - a3['random']) < 0.5}"
        )

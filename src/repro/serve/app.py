"""Minimal ASGI-style application and stdlib asyncio HTTP server.

No web framework: :class:`App` is a tiny router whose handlers take a
:class:`Request` and return a :class:`Response` (optionally streaming).
The object is a valid ASGI 3 callable — tests drive it in-process and
any ASGI server could host it — while :func:`run_app` serves it over a
plain :func:`asyncio.start_server` HTTP/1.1 loop (one request per
connection, ``Connection: close``), which is all the service's
single-digit-client use needs.

:func:`create_app` wires the route table for the partitioning service
from a :class:`~repro.serve.queue.JobManager` and an
:class:`~repro.serve.artifacts.ArtifactCache`; the handler bodies live
in :mod:`repro.serve.handlers`.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import re
import signal
from typing import Any, AsyncIterator, Awaitable, Callable
from urllib.parse import parse_qsl, unquote

from repro.errors import ConfigurationError, ReproError
from repro.serve.artifacts import ArtifactCache
from repro.serve.queue import JobManager, QueueFullError, SubmitError

__all__ = [
    "App", "HTTPError", "Request", "Response", "create_app", "run_app",
    "serve_forever",
]

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HTTPError(Exception):
    """A handler-raised error carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        """Record the status code and client-facing message."""
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed HTTP request handed to a route handler."""

    def __init__(self, method: str, path: str, query: dict[str, str],
                 body: bytes, params: dict[str, str] | None = None) -> None:
        """Bundle the request line, query, body, and path parameters."""
        self.method = method
        self.path = path
        self.query = query
        self.body = body
        self.params = params or {}

    def json(self) -> Any:
        """Decode the body as JSON (empty body → ``{}``)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"request body is not valid JSON: {exc}")

    def int_param(self, name: str) -> int:
        """A path parameter as an integer, or a 400."""
        try:
            return int(self.params[name])
        except (KeyError, ValueError):
            raise HTTPError(400, f"path parameter {name!r} must be an integer")


class Response:
    """A status + JSON (or raw/streaming) payload."""

    def __init__(
        self,
        status: int = 200,
        body: "bytes | str | dict | list | None" = None,
        content_type: str = "application/json",
        stream: "AsyncIterator[bytes] | None" = None,
    ) -> None:
        """Normalize ``body`` to bytes unless ``stream`` is given."""
        self.status = status
        self.content_type = content_type
        self.stream = stream
        if stream is not None:
            self.body = b""
        elif body is None:
            self.body = b""
        elif isinstance(body, bytes):
            self.body = body
        elif isinstance(body, str):
            self.body = body.encode("utf-8")
        else:
            self.body = (json.dumps(body, sort_keys=True) + "\n").encode(
                "utf-8"
            )

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        """A JSON error document for ``status``."""
        return cls(status, {"error": message, "status": status})


Handler = Callable[[Request], Awaitable[Response]]


class App:
    """Route table + dispatch; a valid ASGI 3 application object."""

    def __init__(self) -> None:
        """Start with an empty route table."""
        self._routes: list[tuple[str, "re.Pattern[str]", Handler]] = []

    def route(self, method: str, pattern: str) -> Callable[[Handler], Handler]:
        """Register ``handler`` for ``method`` + ``pattern``.

        ``pattern`` is a literal path where ``{name}`` segments match
        one path component and land in ``request.params``.
        """
        regex = re.compile(
            "^"
            + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern)
            + "$"
        )

        def register(handler: Handler) -> Handler:
            """Record the (method, pattern, handler) triple."""
            self._routes.append((method.upper(), regex, handler))
            return handler

        return register

    async def dispatch(self, method: str, path: str, query: str,
                       body: bytes) -> Response:
        """Route one request; exceptions become JSON error responses."""
        params_query = dict(parse_qsl(query))
        path_seen = False
        for route_method, regex, handler in self._routes:
            match = regex.match(path)
            if match is None:
                continue
            path_seen = True
            if route_method != method.upper():
                continue
            request = Request(
                method.upper(), path, params_query, body,
                {k: unquote(v) for k, v in match.groupdict().items()},
            )
            try:
                return await handler(request)
            except HTTPError as exc:
                return Response.error(exc.status, exc.message)
            except (SubmitError, ConfigurationError) as exc:
                return Response.error(400, str(exc))
            except QueueFullError as exc:
                return Response.error(503, str(exc))
            except ReproError as exc:
                return Response.error(500, str(exc))
        if path_seen:
            return Response.error(405, f"{method} not allowed on {path}")
        return Response.error(404, f"no route for {path}")

    async def __call__(self, scope: dict, receive, send) -> None:
        """ASGI 3 entry point (``http`` scopes only)."""
        if scope["type"] != "http":  # pragma: no cover - lifespan etc.
            raise NotImplementedError(f"scope type {scope['type']!r}")
        body = b""
        while True:
            message = await receive()
            body += message.get("body", b"")
            if not message.get("more_body"):
                break
        response = await self.dispatch(
            scope["method"], scope["path"],
            scope.get("query_string", b"").decode("latin-1"), body,
        )
        headers = [(b"content-type", response.content_type.encode("latin-1"))]
        await send({
            "type": "http.response.start",
            "status": response.status,
            "headers": headers,
        })
        if response.stream is not None:
            async for chunk in response.stream:
                await send({
                    "type": "http.response.body", "body": chunk,
                    "more_body": True,
                })
            await send({"type": "http.response.body", "body": b""})
        else:
            await send({
                "type": "http.response.body", "body": response.body,
            })


async def _serve_connection(app: App, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Parse one HTTP/1.1 request, dispatch, write, close."""
    try:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                ConnectionError, asyncio.LimitOverrunError):
            return
        request_line, _, header_blob = head.partition(b"\r\n")
        try:
            method, target, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            writer.write(b"HTTP/1.1 400 Bad Request\r\n\r\n")
            return
        headers: dict[str, str] = {}
        for line in header_blob.decode("latin-1").split("\r\n"):
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        response = await app.dispatch(method, unquote(path), query, body)
        reason = _REASONS.get(response.status, "Unknown")
        head_lines = (
            f"HTTP/1.1 {response.status} {reason}\r\n"
            f"Content-Type: {response.content_type}\r\n"
            "Connection: close\r\n"
        )
        if response.stream is None:
            head_lines += f"Content-Length: {len(response.body)}\r\n\r\n"
            writer.write(head_lines.encode("latin-1") + response.body)
            await writer.drain()
        else:
            writer.write(head_lines.encode("latin-1") + b"\r\n")
            await writer.drain()
            async for chunk in response.stream:
                writer.write(chunk)
                await writer.drain()
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_app(app: App, host: str = "127.0.0.1",
                  port: int = 0) -> asyncio.AbstractServer:
    """Start serving ``app`` on ``host:port``; returns the server.

    ``port=0`` binds an ephemeral port; read the bound address from
    ``server.sockets[0].getsockname()``.  The caller owns shutdown
    (``server.close()`` + ``await server.wait_closed()``).
    """
    return await asyncio.start_server(
        lambda r, w: _serve_connection(app, r, w), host=host, port=port
    )


def create_app(manager: JobManager, cache: ArtifactCache) -> App:
    """Build the partitioning-service route table."""
    from repro.serve.handlers import register_routes

    app = App()
    register_routes(app, manager, cache)
    return app


async def serve_forever(
    store_root: str,
    host: str = "127.0.0.1",
    port: int = 8642,
    queue_size: int = 16,
    lru: int = 4,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Shutdown guarantees (see ``docs/serve.md``): the listener closes
    first (no new submits), queued jobs flip to ``cancelled``, a
    running job is cancelled at its next stage boundary, the runner
    thread is joined — which also shuts down any warm worker pool and
    unlinks its shared segments — and only then does the process exit.
    """
    from repro.runtime.store import ArtifactStore

    loop = asyncio.get_running_loop()
    store = ArtifactStore(store_root)
    manager = JobManager(store, queue_size=queue_size, loop=loop)
    cache = ArtifactCache(store, capacity=lru)
    app = create_app(manager, cache)
    await manager.start()
    server = await run_app(app, host=host, port=port)
    bound_host, bound_port = server.sockets[0].getsockname()[:2]
    stop = asyncio.Event()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    try:
        print(
            f"repro serve: listening on http://{bound_host}:{bound_port} "
            f"(cache: {store_root})",
            flush=True,
        )
        await stop.wait()
        print("repro serve: draining", flush=True)
        server.close()
        await server.wait_closed()
        await manager.shutdown()
    finally:
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(ValueError, RuntimeError):
                loop.remove_signal_handler(sig)
    print("repro serve: shutdown complete", flush=True)
    return 0

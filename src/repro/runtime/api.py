"""``run_job``: the single entry point every driver delegates to.

The runner takes a frozen :class:`~repro.runtime.spec.JobSpec`, plans
it (:func:`~repro.runtime.plan.plan_job`), picks an executor
(:func:`~repro.runtime.executor.select_executor`), and runs the stage
sequence inside the same ``partition`` root span — same attribute set,
same pass order, same pool lifecycles — the four legacy drivers
emitted, so the observability suite pins the runtime exactly as it
pinned the drivers.  With an :class:`~repro.runtime.store.ArtifactStore`
attached, a content-addressed lookup runs first: on a hit the saved
assignment is returned bit for bit with **zero** stages executed (the
result's ``stages_executed`` is empty and the trace holds a single
``cache_hit`` span instead of the pipeline).
"""

from __future__ import annotations

import time

from repro.errors import ConfigurationError, JobCancelledError
from repro.obs.tracer import get_tracer
from repro.runtime.plan import pipeline_kind, plan_job
from repro.runtime.registry import create_algorithm
from repro.runtime.result import PartitionResult
from repro.runtime.spec import JobSpec
from repro.runtime.stages import RunContext

__all__ = ["run_job", "validate_spec"]


def validate_spec(spec: JobSpec) -> None:
    """Reject invalid specs with the drivers' exact error messages.

    The legacy constructors performed these checks at build time; the
    shims still do.  Running them here as well means specs built
    directly via :func:`~repro.runtime.spec.make_job` fail identically.
    """
    hep = pipeline_kind(spec) == "hep"
    if spec.tau is not None and spec.tau <= 0:
        raise ConfigurationError(f"tau must be positive, got {spec.tau}")
    if spec.memory_budget is not None and spec.memory_budget < 1:
        raise ConfigurationError(
            f"memory_budget must be positive, got {spec.memory_budget}"
        )
    if spec.metrics_workers < 0:
        raise ConfigurationError(
            f"metrics_workers must be >= 0, got {spec.metrics_workers}"
        )
    if spec.workers < 0:
        raise ConfigurationError(
            f"workers must be >= 1, got {spec.workers}"
        )
    if spec.workers >= 1:
        if spec.batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {spec.batch}")
        if hep and spec.buffer_size is not None:
            raise ConfigurationError(
                "buffer_size is a sequential scoring window; it cannot "
                "combine with multi-worker streaming"
            )
    if spec.k < 2:
        if hep:
            raise ConfigurationError(
                f"out-of-core HEP requires k >= 2, got {spec.k}"
            )
        if spec.workers >= 1:
            raise ConfigurationError(
                f"multi-worker partitioning requires k >= 2, got {spec.k}"
            )
        raise ConfigurationError(
            f"streaming driver requires k >= 2, got {spec.k}"
        )


def _default_source(spec: JobSpec):
    """Resolve the source from the spec alone (path/dataset inputs)."""
    if spec.input.kind in ("path", "dataset"):
        return spec.input.path
    raise ConfigurationError(
        f"jobspec input of kind {spec.input.kind!r} requires an explicit "
        "source object passed to run_job"
    )


def _names(spec: JobSpec, algorithm) -> tuple[str, str]:
    """(root-span display name, result-facing algorithm name)."""
    if pipeline_kind(spec) == "hep":
        if spec.workers >= 1:
            name = f"HEP-mw{spec.workers}"
            return name, name
        return "HEP-ooc", "HEP"
    if spec.workers >= 1:
        name = f"HDRF-mw{spec.workers}"
        return name, name
    return f"{algorithm.name}-ooc", algorithm.name


def _check_cancel(cancel, spec: JobSpec, where: str) -> None:
    """Raise :class:`JobCancelledError` if ``cancel`` is set."""
    if cancel is not None and cancel.is_set():
        raise JobCancelledError(
            f"job {spec.content_hash()[:12]} cancelled before {where}"
        )


def _execute(spec: JobSpec, source, algorithm=None, cancel=None) -> PartitionResult:
    """Run the planned stages; the body mirrors the pre-PR 8 drivers."""
    from repro.runtime.executor import select_executor
    from repro.stream.reader import PrefetchingEdgeSource, open_edge_source

    kind = pipeline_kind(spec)
    algo = None
    if kind != "hep" and spec.workers == 0:
        algo = (
            algorithm
            if algorithm is not None
            else create_algorithm(spec.algo, **spec.params)
        )
    display, result_name = _names(spec, algo)

    ctx = RunContext(spec, source, algorithm=algo)
    if kind == "hep":
        ctx.empty_message = "out-of-core HEP: edge stream is empty"
    elif spec.workers >= 1:
        ctx.empty_message = "multi-worker HDRF: edge stream is empty"
    else:
        ctx.empty_message = f"{algo.name}: edge stream is empty"

    plan = plan_job(spec)
    executor = select_executor(spec)
    tracer = get_tracer()
    start = time.perf_counter()
    attrs: dict = {"algo": display, "k": spec.k}
    if kind != "hep" and spec.workers >= 1:
        attrs["workers"] = spec.workers
    attrs["source"] = str(source)
    with tracer.span("partition", **attrs):
        try:
            # prepare() may spawn a warm worker pool; keeping it inside
            # the try guarantees finish() reaps that pool even when an
            # interrupt lands mid-prepare.
            executor.prepare(spec, ctx)
            src = open_edge_source(
                source, spec.chunk_size, order=spec.input.order,
                seed=spec.input.seed, mmap=spec.input.mmap,
            )
            if spec.input.prefetch > 0:
                src = PrefetchingEdgeSource(src, depth=spec.input.prefetch)
            ctx.src = src
            executor.start(spec, ctx)
            for stage in plan.stages:
                _check_cancel(cancel, spec, f"stage {stage.name!r}")
                stage.fn(spec, ctx, executor)
                ctx.executed.append(stage.name)
        finally:
            executor.finish(spec, ctx)
            ctx.close()
        source_stats = ctx.src.stats() if ctx.src is not None else None
        if tracer.enabled and source_stats:
            tracer.event(
                "source_read", counters=source_stats,
                source=ctx.src.describe(),
            )
    return PartitionResult(
        spec=spec,
        algorithm=result_name,
        parts=ctx.parts,
        k=spec.k,
        num_vertices=ctx.stats.num_vertices,
        num_edges=ctx.stats.num_edges,
        chunk_size=spec.chunk_size,
        loads=ctx.loads,
        replication_factor=ctx.replication_factor,
        edge_balance=ctx.edge_balance,
        runtime_s=time.perf_counter() - start,
        passes=ctx.passes,
        tau=ctx.tau,
        breakdown=ctx.breakdown,
        spill_bytes=ctx.spill_bytes,
        buffer_size=spec.buffer_size,
        projected_memory_bytes=ctx.projected_memory_bytes,
        report=ctx.report,
        job_hash=spec.content_hash(),
        cache_hit=False,
        stages_executed=tuple(ctx.executed),
        trace_path=str(spec.trace_path) if spec.trace_path else None,
    )


def run_job(
    spec: JobSpec, source=None, *, store=None, algorithm=None, cancel=None
) -> PartitionResult:
    """Run one partitioning job described by ``spec``.

    Parameters
    ----------
    spec:
        The frozen job description (:func:`~repro.runtime.spec.make_job`
        is the convenient builder).
    source:
        The input to partition — anything
        :func:`~repro.stream.reader.open_edge_source` accepts.  May be
        omitted for ``path``/``dataset`` inputs, where the spec itself
        names the source.
    store:
        Optional :class:`~repro.runtime.store.ArtifactStore`.  When
        given and the input is content-addressable, a cache hit returns
        the saved result without executing any stage, and a miss
        persists the computed result for next time.
    algorithm:
        Optional pre-built :class:`~repro.stream.driver.
        StreamingAlgorithm` instance (the legacy driver shims pass the
        one their constructor already validated); by default the
        adapter is created from the registry using ``spec.algo`` and
        ``spec.params``.
    cancel:
        Optional :class:`threading.Event`-like object.  When set, the
        run raises :class:`~repro.errors.JobCancelledError` at the next
        stage boundary; a cancelled run persists nothing, so an
        identical resubmit recomputes from scratch.
    """
    validate_spec(spec)
    resolved = source if source is not None else _default_source(spec)
    digest = None
    key = None
    if store is not None and spec.cacheable():
        from repro.runtime.store import input_digest

        digest = input_digest(spec, resolved)
        if digest is not None:
            key = store.cache_key(spec, digest)
            lookup = time.perf_counter()
            cached = store.get(key, spec)
            if cached is not None:
                tracer = get_tracer()
                with tracer.span(
                    "partition", algo=spec.algo, k=spec.k,
                    source=str(resolved), cached=True,
                ):
                    with tracer.span("cache_hit", key=key):
                        pass
                cached.runtime_s = time.perf_counter() - lookup
                cached.trace_path = (
                    str(spec.trace_path) if spec.trace_path else None
                )
                return cached
    _check_cancel(cancel, spec, "planning")
    result = _execute(spec, resolved, algorithm=algorithm, cancel=cancel)
    if key is not None:
        store.put(key, result, digest)
    return result

"""Micro-benchmarks of the individual partitioners on the OK stand-in.

Unlike the artifact benches (single-shot experiment regenerations),
these run multiple rounds so pytest-benchmark's statistics are
meaningful — the comparative timing table is the pure-Python analogue of
the paper's run-time panels.
"""

import pytest

from repro.experiments.common import make_partitioner
from repro.graph import datasets

_K = 32
_NAMES = ("DBH", "Grid", "HDRF", "HEP-100", "HEP-10", "HEP-1", "NE", "NE++", "SNE")


@pytest.fixture(scope="module")
def ok_graph():
    return datasets.load("OK")


@pytest.mark.parametrize("name", _NAMES)
def bench_partitioner(benchmark, ok_graph, name):
    partitioner = make_partitioner(name)
    assignment = benchmark.pedantic(
        partitioner.partition, args=(ok_graph, _K), rounds=2, iterations=1,
        warmup_rounds=0,
    )
    assert assignment.num_unassigned == 0


def bench_csr_build(benchmark, ok_graph):
    from repro.graph import CsrGraph

    csr = benchmark.pedantic(
        CsrGraph.build, args=(ok_graph,), rounds=3, iterations=1
    )
    assert csr.col.size == 2 * ok_graph.num_edges


def bench_tau_precompute(benchmark, ok_graph):
    from repro.core import precompute_profile

    profile = benchmark.pedantic(
        precompute_profile, args=(ok_graph, _K), rounds=3, iterations=1
    )
    assert len(profile.bytes_per_tau) > 0

"""Vertex-cut graph-processing simulator (the Spark/GraphX substitute).

Given a :class:`~repro.partition.base.PartitionAssignment`, the engine
precomputes the static placement quantities a GAS/Pregel system derives
from an edge partitioning:

* which machine holds which edges (one partition = one machine),
* the replica sets (``cover``), masters, and per-machine local degrees.

Algorithms (:mod:`repro.processing.algorithms`) then execute supersteps
over the *real* graph — values are exact, not approximated — while the
engine charges simulated time per superstep from the active-vertex set
via :class:`~repro.processing.cost.CostModel`.  Lower replication factor
means fewer replica-sync messages; better vertex balance means a lower
per-machine maximum: both paper phenomena fall out of the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.partition.base import PartitionAssignment
from repro.processing.cost import CostModel

__all__ = ["VertexCutEngine", "JobResult"]


@dataclass
class JobResult:
    """Outcome of one simulated processing job."""

    algorithm: str
    supersteps: int
    sim_seconds: float
    total_messages: int
    values: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]


class VertexCutEngine:
    """Simulated cluster executing vertex programs over a vertex cut."""

    def __init__(
        self,
        assignment: PartitionAssignment,
        cost_model: CostModel | None = None,
    ) -> None:
        self.assignment = assignment
        self.graph = assignment.graph
        self.k = assignment.k
        self.cost = cost_model or CostModel()

        n = self.graph.num_vertices
        edges = self.graph.edges
        parts = assignment.parts

        #: cover[m, v] — machine m holds a replica of vertex v
        self.cover = assignment.cover_matrix()
        #: number of machines holding each vertex
        self.replicas = self.cover.sum(axis=0).astype(np.int64)
        #: per-machine degree of each vertex counting only local edges
        self.local_degree = np.zeros((self.k, n), dtype=np.int64)
        for m in range(self.k):
            local = edges[parts == m]
            if local.size:
                self.local_degree[m] = np.bincount(local.ravel(), minlength=n)

        #: vertices that participate in synchronization (replicated ones)
        self.synced = self.replicas > 1

    # -- per-superstep accounting -------------------------------------------------

    def superstep_cost(self, active: np.ndarray) -> tuple[float, int]:
        """Simulated seconds and message count for one superstep in which
        the vertices in boolean mask ``active`` compute and synchronize."""
        if not active.any():
            return self.cost.barrier_cost, 0
        edge_work = self.local_degree[:, active].sum(axis=1)
        active_cover = self.cover[:, active].sum(axis=1)
        # Each active replicated vertex exchanges gather+apply messages on
        # every machine that covers it.
        sync = active & self.synced
        messages_per_machine = 2 * self.cover[:, sync].sum(axis=1)
        seconds = self.cost.superstep_seconds(
            float(edge_work.max()),
            float(active_cover.max()),
            float(messages_per_machine.max()),
        )
        return seconds, int(messages_per_machine.sum())

    # -- static placement summaries ------------------------------------------------

    def replication_factor(self) -> float:
        covered = self.graph.degrees > 0
        denominator = max(int(covered.sum()), 1)
        return float(self.replicas[covered].sum() / denominator)

    def machine_edge_loads(self) -> np.ndarray:
        return self.assignment.partition_sizes()

    def machine_vertex_loads(self) -> np.ndarray:
        return self.cover.sum(axis=1).astype(np.int64)

"""Tests for the hypergraph extension (container, generators, metrics,
hybrid and streaming partitioners)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, GraphFormatError
from repro.hypergraph import (
    HybridHypergraphPartitioner,
    Hypergraph,
    MinMaxStreamingHypergraphPartitioner,
    assert_valid_hyper,
    clustered_hypergraph,
    hyper_balance,
    hyper_cover_matrix,
    hyper_replication_factor,
    powerlaw_hypergraph,
    split_hyperedges,
)


def small_hg() -> Hypergraph:
    return Hypergraph.from_hyperedges(
        [(0, 1, 2), (2, 3), (3, 4, 5), (0, 5)], num_vertices=6
    )


class TestContainer:
    def test_shape(self):
        hg = small_hg()
        assert hg.num_hyperedges == 4
        assert hg.num_pins == 10
        assert hg.num_vertices == 6

    def test_hyperedge_view(self):
        hg = small_hg()
        assert hg.hyperedge(0).tolist() == [0, 1, 2]
        assert hg.hyperedge(3).tolist() == [0, 5]

    def test_pin_counts(self):
        assert small_hg().pin_counts().tolist() == [3, 2, 3, 2]

    def test_vertex_degrees(self):
        assert small_hg().vertex_degrees.tolist() == [2, 1, 2, 2, 1, 2]

    def test_incident_hyperedges(self):
        hg = small_hg()
        assert sorted(hg.incident_hyperedges(2).tolist()) == [0, 1]
        assert sorted(hg.incident_hyperedges(5).tolist()) == [2, 3]

    def test_duplicate_pins_dropped(self):
        hg = Hypergraph.from_hyperedges([(1, 1, 2)], num_vertices=3)
        assert hg.hyperedge(0).tolist() == [1, 2]

    def test_empty_hyperedge_rejected(self):
        with pytest.raises(GraphFormatError):
            Hypergraph.from_hyperedges([()], num_vertices=2)

    def test_pin_out_of_range(self):
        with pytest.raises(GraphFormatError):
            Hypergraph.from_hyperedges([(0, 9)], num_vertices=3)

    def test_bad_eptr(self):
        with pytest.raises(GraphFormatError):
            Hypergraph(np.array([1, 2]), np.array([0, 1]), 2)


class TestGenerators:
    def test_powerlaw_shape(self):
        hg = powerlaw_hypergraph(200, 200, mean_pins=4, seed=1)
        assert hg.num_hyperedges == 200
        assert (hg.pin_counts() >= 2).all()
        deg = hg.vertex_degrees
        assert deg.max() > 4 * max(np.median(deg[deg > 0]), 1)

    def test_powerlaw_deterministic(self):
        a = powerlaw_hypergraph(100, 50, seed=2)
        b = powerlaw_hypergraph(100, 50, seed=2)
        assert np.array_equal(a.pins, b.pins)

    def test_powerlaw_validation(self):
        with pytest.raises(ConfigurationError):
            powerlaw_hypergraph(1, 10)
        with pytest.raises(ConfigurationError):
            powerlaw_hypergraph(10, 10, mean_pins=1.0)

    def test_clustered_locality(self):
        hg = clustered_hypergraph(6, 30, 40, seed=3)
        assert hg.num_vertices == 180
        # Most hyperedges stay within one 30-vertex cluster.
        within = 0
        for e in range(hg.num_hyperedges):
            pins = hg.hyperedge(e)
            within += int(pins.max() // 30 == pins.min() // 30)
        assert within > 0.8 * hg.num_hyperedges


class TestMetrics:
    def test_cover_matrix(self):
        hg = small_hg()
        parts = np.array([0, 0, 1, 1], dtype=np.int32)
        cover = hyper_cover_matrix(hg, parts, 2)
        assert cover[0].tolist() == [True, True, True, True, False, False]
        assert cover[1].tolist() == [True, False, False, True, True, True]

    def test_replication_factor(self):
        hg = small_hg()
        parts = np.array([0, 0, 1, 1], dtype=np.int32)
        # covers: p0 {0,1,2,3}, p1 {0,3,4,5} -> 8 replicas / 6 vertices
        assert hyper_replication_factor(hg, parts, 2) == pytest.approx(8 / 6)

    def test_single_partition_rf_one(self):
        hg = small_hg()
        parts = np.zeros(4, dtype=np.int32)
        assert hyper_replication_factor(hg, parts, 1) == 1.0

    def test_balance(self):
        hg = small_hg()
        assert hyper_balance(hg, np.array([0, 0, 0, 1]), 2) == pytest.approx(1.5)

    def test_assert_valid_detects_unassigned(self):
        hg = small_hg()
        with pytest.raises(Exception):
            assert_valid_hyper(hg, np.array([0, 0, 0, -1]), 2)

    def test_assert_valid_detects_overflow(self):
        hg = small_hg()
        with pytest.raises(Exception):
            assert_valid_hyper(hg, np.array([0, 0, 0, 0]), 2, alpha=1.0)


class TestSplit:
    def test_all_high_streaming(self):
        # Vertex degrees: hub vertices 0,1 appear in many hyperedges.
        hes = [(0, 1)] + [(0, i) for i in range(2, 8)] + [(1, i) for i in range(2, 8)]
        hg = Hypergraph.from_hyperedges(hes, num_vertices=8)
        high, streaming = split_hyperedges(hg, tau=1.5)
        assert high[0] and high[1]
        assert streaming[0]          # (0,1): both pins high
        assert not streaming[1:].any()

    def test_tau_monotone(self):
        hg = powerlaw_hypergraph(200, 300, seed=4)
        shares = [
            float(split_hyperedges(hg, tau)[1].mean()) for tau in (0.5, 1.0, 2.0, 8.0)
        ]
        assert shares == sorted(shares, reverse=True)

    def test_bad_tau(self):
        with pytest.raises(ConfigurationError):
            split_hyperedges(small_hg(), 0)


class TestPartitioners:
    @pytest.fixture(scope="class")
    def hg(self):
        return powerlaw_hypergraph(300, 400, mean_pins=4, seed=5)

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_minmax_valid(self, hg, k):
        parts = MinMaxStreamingHypergraphPartitioner().partition(hg, k)
        assert_valid_hyper(hg, parts, k, alpha=1.3)

    @pytest.mark.parametrize("tau", [0.5, 1.0, 10.0])
    @pytest.mark.parametrize("k", [2, 4])
    def test_hybrid_valid(self, hg, tau, k):
        parts = HybridHypergraphPartitioner(tau=tau).partition(hg, k)
        assert_valid_hyper(hg, parts, k, alpha=1.5)

    def test_hybrid_beats_streaming_on_clustered(self):
        """The HEP thesis lifted to hypergraphs: expansion exploits
        locality that streaming cannot see."""
        hg = clustered_hypergraph(8, 40, 60, crossover=0.03, seed=6)
        k = 8
        rf_hybrid = hyper_replication_factor(
            hg, HybridHypergraphPartitioner(tau=10.0).partition(hg, k), k
        )
        rf_stream = hyper_replication_factor(
            hg, MinMaxStreamingHypergraphPartitioner().partition(hg, k), k
        )
        assert rf_hybrid < rf_stream

    def test_streaming_share_recorded(self, hg):
        p = HybridHypergraphPartitioner(tau=0.5)
        p.partition(hg, 4)
        assert p.last_streaming_share is not None
        assert 0.0 <= p.last_streaming_share <= 1.0

    def test_rejects_k1(self, hg):
        with pytest.raises(ConfigurationError):
            HybridHypergraphPartitioner().partition(hg, 1)
        with pytest.raises(ConfigurationError):
            MinMaxStreamingHypergraphPartitioner().partition(hg, 1)

    def test_deterministic(self, hg):
        a = HybridHypergraphPartitioner(tau=1.0).partition(hg, 4)
        b = HybridHypergraphPartitioner(tau=1.0).partition(hg, 4)
        assert np.array_equal(a, b)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(4, 30),
    m=st.integers(2, 40),
    k=st.sampled_from([2, 3, 4]),
    tau=st.sampled_from([0.5, 1.0, 5.0]),
    seed=st.integers(0, 4),
)
def test_hybrid_hypergraph_property(n, m, k, tau, seed):
    """Property: the hybrid hypergraph partitioner always assigns every
    hyperedge exactly once within range."""
    hg = powerlaw_hypergraph(n, m, mean_pins=3, seed=seed)
    parts = HybridHypergraphPartitioner(tau=tau).partition(hg, k)
    assert parts.shape == (hg.num_hyperedges,)
    assert (parts >= 0).all() and (parts < k).all()
    rf = hyper_replication_factor(hg, parts, k)
    assert 1.0 <= rf <= k

"""Command-line interface: ``python -m repro`` / ``hep-partition``.

Subcommands mirror the workflows a user of the original C++ system has:

* ``partition`` — partition an edge-list file (or a named stand-in
  dataset) and write one partition id per edge; ``--out-of-core`` runs
  HEP *or any streaming baseline* (``--algo``) through the chunked
  pipeline so edge files are never fully loaded,
* ``scan``      — the counting/metrics passes alone: stream statistics
  and, with ``--parts``, replication factor and balance for a saved
  assignment (``--metrics-workers`` fans both sweeps out over worker
  processes),
* ``compare``   — run several partitioners on one graph side by side,
* ``select-tau`` — pick the largest tau fitting a memory budget (§4.4),
* ``extsort``   — rewrite an edge file in degree order with bounded
  memory (external merge sort),
* ``trace``     — inspect a ``--trace`` JSONL file (``trace summarize``
  prints the per-phase time/memory/counter breakdown),
* ``experiment`` — regenerate one of the paper's tables/figures,
* ``datasets``  — list the Table 3 stand-ins or export one to disk.

``partition``, ``scan`` and ``extsort`` accept ``--trace FILE`` to
record a structured span trace of the run (:mod:`repro.obs`); tracing
never changes results, only observes them.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import HepPartitioner, precompute_profile, select_tau
from repro.errors import ReproError
from repro.experiments import REGISTRY
from repro.experiments.common import PARTITIONER_FACTORIES, run_partitioner
from repro.graph import datasets, read_binary_edgelist, read_text_edgelist
from repro.graph.edgelist import Graph
from repro.metrics import (
    edge_balance,
    format_table,
    replication_factor,
    vertex_balance,
)
from repro.obs.summary import format_summary, read_trace
from repro.obs.tracer import MEMORY_MODES, tracing
from repro.stream.extsort import EXTSORT_ORDERS
from repro.stream.reader import DEFAULT_CHUNK_SIZE

__all__ = ["main", "build_parser"]


def _load_graph(source: str) -> Graph:
    """Dataset name, text/binary edge list, or shard manifest."""
    if source.upper() in datasets.available():
        return datasets.load(source)
    path = Path(source)
    if not path.exists():
        raise ReproError(
            f"{source!r} is neither a dataset name "
            f"({', '.join(datasets.available())}) nor a file"
        )
    from repro.stream.shard import ShardedEdgeSource, is_manifest_path

    if is_manifest_path(path):
        src = ShardedEdgeSource(path)
        pairs = [chunk.pairs for chunk in src]
        edges = (
            np.vstack(pairs) if pairs else np.empty((0, 2), dtype=np.int64)
        )
        return Graph.from_edges(
            edges, num_vertices=src.num_vertices, name=path.stem
        )
    from repro.stream.reader import BINARY_SUFFIXES, require_edge_format

    if path.suffix in BINARY_SUFFIXES:
        require_edge_format(path, "binary")
        return read_binary_edgelist(path, name=path.stem)
    require_edge_format(path, "text")
    return read_text_edgelist(path, name=path.stem)


def _cmd_partition(args: argparse.Namespace) -> int:
    if args.method.lower() == "help":
        from repro.runtime.registry import algorithm_catalog

        print(algorithm_catalog())
        return 0
    if args.cache is not None and not args.out_of_core:
        raise ReproError("--cache requires --out-of-core (the cache stores "
                         "runtime job results)")
    if args.passes is not None and args.method.lower() != "restreaming":
        raise ReproError("--passes applies only to the Restreaming method")
    if args.tau is not None and args.method.upper() != "HEP":
        # HEP-<x> spellings carry their tau in the name; only plain HEP
        # takes the flag.
        raise ReproError("--tau applies only to the HEP method "
                         "(HEP-<tau> names carry their own)")
    if args.tau is not None and args.memory_budget is not None:
        raise ReproError("--tau and --memory-budget conflict: the budget "
                         "exists to select tau (drop one of them)")
    if args.prefetch < 0:
        raise ReproError(f"--prefetch must be >= 0, got {args.prefetch}")
    if args.metrics_workers < 0:
        raise ReproError(
            f"--metrics-workers must be >= 0, got {args.metrics_workers}"
        )
    if args.metrics_workers and not args.out_of_core:
        raise ReproError("--metrics-workers requires --out-of-core (the "
                         "in-memory path scores its Graph directly)")
    if args.workers is not None and not args.out_of_core:
        raise ReproError("--workers requires --out-of-core (worker "
                         "processes stream shard files, not RAM)")
    if args.batch is not None and args.workers is None:
        raise ReproError("--batch sizes the per-worker superstep; it "
                         "requires --workers")
    if not args.shared_memory and not args.out_of_core:
        raise ReproError("--no-shared-memory selects the worker state "
                         "protocol; it requires --out-of-core")
    if args.out_of_core:
        return _partition_out_of_core(args)
    if args.memory_budget is not None:
        raise ReproError("--memory-budget requires --out-of-core (the "
                         "in-memory path cannot honor a byte budget)")
    if args.prefetch:
        raise ReproError("--prefetch requires --out-of-core (the in-memory "
                         "path loads the file in one read)")
    if args.mmap:
        raise ReproError("--mmap requires --out-of-core (the in-memory "
                         "path loads the file in one read)")
    if args.spill_compression is not None:
        raise ReproError("--spill-compression requires --out-of-core")
    graph = _load_graph(args.graph)
    if args.method.upper() == "HEP":
        partitioner = HepPartitioner(
            tau=10.0 if args.tau is None else args.tau,
            spill_dir=args.spill_dir,
            buffer_size=args.buffer_size,
            chunk_size=args.chunk_size,
        )
    elif args.spill_dir is not None or args.buffer_size is not None:
        raise ReproError("--spill-dir/--buffer-size apply only to HEP")
    elif args.method.lower() == "restreaming":
        from repro.partition import RestreamingHdrfPartitioner

        # Only forward --passes when given, so the class default is the
        # single source of truth.
        kwargs = {} if args.passes is None else {"passes": args.passes}
        partitioner = RestreamingHdrfPartitioner(**kwargs)
    else:
        from repro.experiments.common import make_partitioner

        partitioner = make_partitioner(args.method)
    start = time.perf_counter()
    assignment = partitioner.partition(graph, args.k)
    elapsed = time.perf_counter() - start
    print(f"partitioner        : {partitioner.name}")
    print(f"graph              : {graph!r}")
    print(f"replication factor : {replication_factor(assignment):.4f}")
    print(f"edge balance alpha : {edge_balance(assignment):.4f}")
    print(f"vertex balance     : {vertex_balance(assignment):.4f}")
    print(f"run-time           : {elapsed:.3f}s")
    if args.output:
        from repro.graph.partition_io import write_assignment

        write_assignment(assignment, args.output)
        print(f"assignment written : {args.output} (+ .meta.json sidecar)")
    if args.shards_dir:
        from repro.graph.partition_io import write_partition_edgelists

        paths = write_partition_edgelists(assignment, args.shards_dir)
        print(f"shards written     : {len(paths)} binary edge lists in "
              f"{args.shards_dir}")
    return 0


def _job_spec_from_args(args: argparse.Namespace):
    """Lower the ``partition`` flag set to a runtime JobSpec.

    Mirrors the legacy drivers' defaulting policies exactly: the
    sequential HEP pipeline scans with cold pools
    (``shared_memory=False``), the multi-worker drivers default their
    scan parallelism to the worker count, and ``--batch`` falls back to
    the BSP default.
    """
    from repro.runtime.spec import make_job
    from repro.stream.workers import DEFAULT_WORKER_BATCH

    hep = args.method.upper() == "HEP"
    options: dict = {}
    algo_params: dict = {}
    if hep:
        algo = "HEP"
        options.update(
            tau=args.tau,
            memory_budget=args.memory_budget,
            buffer_size=args.buffer_size,
            spill_dir=args.spill_dir,
            spill_compression=args.spill_compression,
        )
    else:
        algo = args.method
        if args.passes is not None:
            algo_params["passes"] = args.passes
    if args.workers is not None:
        options.update(
            workers=args.workers,
            batch=(DEFAULT_WORKER_BATCH if args.batch is None
                   else args.batch),
            # 0 = "not set": scan with the worker count, as the
            # multi-worker drivers always did.
            metrics_workers=args.metrics_workers or args.workers,
            shared_memory=args.shared_memory,
        )
    else:
        options.update(
            metrics_workers=args.metrics_workers,
            shared_memory=False if hep else args.shared_memory,
        )
    return make_job(
        algo, args.graph, args.k,
        chunk_size=args.chunk_size,
        prefetch=args.prefetch,
        mmap=args.mmap,
        algo_params=algo_params,
        **options,
    )


def _make_store(args: argparse.Namespace):
    """The ``--cache`` artifact store, or ``None`` when not asked for."""
    if args.cache is None:
        return None
    from repro.runtime.store import ArtifactStore

    return ArtifactStore(args.cache)


def _print_cache(store, result) -> None:
    """One greppable line reporting the cache outcome of this run."""
    if store is None:
        return
    outcome = "hit" if result.cache_hit else "miss (stored)"
    print(f"cache              : {outcome} job {result.job_hash[:12]} "
          f"in {store.root}")


def _partition_out_of_core(args: argparse.Namespace) -> int:
    """Chunked out-of-core partitioning (``--out-of-core``): the flag
    set is lowered to a :class:`~repro.runtime.spec.JobSpec` and run by
    :func:`repro.runtime.api.run_job`, so on-disk edge files are never
    fully loaded.  ``--algo HEP`` (the default) plans the budgeted HEP
    pipeline; any registered streaming baseline name plans the
    three-stage streaming pipeline; ``--workers N`` executes on BSP
    worker processes."""
    if args.shards_dir:
        raise ReproError("--shards-dir needs the edge list in memory; "
                         "rerun without --out-of-core to write shards")
    if args.workers is not None:
        return _partition_multi_worker(args)
    if args.method.upper() == "HEP":
        return _out_of_core_hep(args)
    return _out_of_core_baseline(args)


def _partition_multi_worker(args: argparse.Namespace) -> int:
    """``--workers N``: shard-parallel partitioning on worker processes.

    ``--algo HEP`` runs the budgeted HEP pipeline with a multi-process
    streaming phase; ``--algo HDRF`` streams the whole file as informed
    HDRF, one worker per shard assignment.  Both are bit-identical to
    the in-process BSP schedule with the same workers/batch.
    """
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    if args.batch is not None and args.batch < 1:
        raise ReproError(f"--batch must be >= 1, got {args.batch}")
    method = args.method.upper()
    if method == "HEP":
        return _multi_worker_hep(args)
    if method != "HDRF":
        raise ReproError(
            f"--workers supports HEP or HDRF (the BSP-parallelizable "
            f"streaming kernels); got {args.method!r}"
        )
    if args.memory_budget is not None:
        raise ReproError("--memory-budget tunes HEP's tau; multi-worker "
                         "HDRF has no such knob")
    if args.buffer_size is not None:
        raise ReproError("--buffer-size applies to HEP's streaming phase")
    if args.spill_dir is not None or args.spill_compression is not None:
        raise ReproError("--spill-dir/--spill-compression apply to HEP's "
                         "h2h spill; multi-worker HDRF never spills")
    if args.mmap:
        raise ReproError("--mmap applies to the single-reader drivers; "
                         "workers stream their shard slices with buffered "
                         "reads, so it has no effect here")
    from repro.runtime.api import run_job

    store = _make_store(args)
    result = run_job(_job_spec_from_args(args), store=store)
    print(f"partitioner        : {result.algorithm} (out-of-core, "
          f"{args.workers} worker processes)")
    print(f"source             : {args.graph} "
          f"(n={result.num_vertices:,} m={result.num_edges:,})")
    print(f"chunk size         : {result.chunk_size:,} edges")
    _print_worker_protocol(args.shared_memory)
    _print_worker_report(result.report)
    _print_cache(store, result)
    _print_ooc_quality(result, args.output)
    return 0


def _print_worker_protocol(shared_memory: bool) -> None:
    """One line naming the worker state protocol that ran."""
    print("worker protocol    : "
          + ("shared-memory snapshots, warm pool" if shared_memory
             else "pickled deltas over pipes (--no-shared-memory)"))


def _print_worker_report(report) -> None:
    """Shared superstep summary of the multi-worker runs."""
    if report is None:
        return
    print(f"bsp schedule       : {report.workers} workers x batch "
          f"{report.batch} = {report.supersteps:,} supersteps "
          f"({report.slow_supersteps} near capacity)")
    timings = report.timings
    if timings is None:
        return
    print(f"worker busy        : max {timings.max_busy_s:.3f}s, "
          f"mean {timings.mean_busy_s:.3f}s "
          f"(skew {timings.skew:.2f}x)")
    print(f"coordinator        : recv wait {timings.coordinator_recv_s:.3f}s, "
          f"merge {timings.coordinator_merge_s:.3f}s, "
          f"send {timings.coordinator_send_s:.3f}s")


def _multi_worker_hep(args: argparse.Namespace) -> int:
    """HEP with a multi-process streaming phase (``--algo HEP --workers``)."""
    from repro.runtime.api import run_job

    store = _make_store(args)
    result = run_job(_job_spec_from_args(args), store=store)
    print(f"partitioner        : HEP-{result.tau:g} (out-of-core, "
          f"{args.workers} worker processes)")
    print(f"source             : {args.graph} "
          f"(n={result.num_vertices:,} m={result.num_edges:,})")
    print(f"chunk size         : {result.chunk_size:,} edges")
    _print_worker_protocol(args.shared_memory)
    if result.projected_memory_bytes is not None:
        print(f"memory budget      : {args.memory_budget:,} bytes "
              f"(projected {result.projected_memory_bytes:,})")
    print(f"h2h edges spilled  : {result.breakdown.num_h2h_edges:,} "
          f"({result.spill_bytes:,} bytes on disk)")
    _print_worker_report(result.report)
    _print_cache(store, result)
    _print_ooc_quality(result, args.output)
    return 0


def _print_ooc_quality(result, output: str | None) -> None:
    """Shared tail of the out-of-core reports: quality, timing, output."""
    print(f"replication factor : {result.replication_factor:.4f}")
    print(f"edge balance alpha : {result.edge_balance:.4f}")
    print(f"run-time           : {result.runtime_s:.3f}s")
    if output:
        np.savetxt(output, result.parts, fmt="%d")
        print(f"assignment written : {output}")


def _out_of_core_hep(args: argparse.Namespace) -> int:
    """The budgeted HEP pipeline through the runtime."""
    from repro.runtime.api import run_job

    store = _make_store(args)
    result = run_job(_job_spec_from_args(args), store=store)
    print(f"partitioner        : HEP-{result.tau:g} (out-of-core)")
    print(f"source             : {args.graph} "
          f"(n={result.num_vertices:,} m={result.num_edges:,})")
    print(f"chunk size         : {result.chunk_size:,} edges")
    if args.prefetch:
        print(f"prefetch depth     : {args.prefetch} chunks")
    if result.buffer_size:
        print(f"buffer size        : {result.buffer_size:,} edges")
    if result.projected_memory_bytes is not None:
        print(f"memory budget      : {args.memory_budget:,} bytes "
              f"(projected {result.projected_memory_bytes:,})")
    print(f"h2h edges spilled  : {result.breakdown.num_h2h_edges:,} "
          f"({result.spill_bytes:,} bytes on disk"
          + (f", {args.spill_compression}" if args.spill_compression else "")
          + ")")
    _print_cache(store, result)
    _print_ooc_quality(result, args.output)
    return 0


def _out_of_core_baseline(args: argparse.Namespace) -> int:
    """A registered streaming baseline through the runtime."""
    from repro.runtime.api import run_job
    from repro.runtime.registry import AlgorithmRegistryView

    streaming_algorithms = AlgorithmRegistryView()
    known = {name.lower() for name in streaming_algorithms}
    if args.method.lower() not in known:
        raise ReproError(
            f"--out-of-core supports HEP or a streaming baseline "
            f"({', '.join(streaming_algorithms)}); got {args.method!r}"
        )
    if args.memory_budget is not None:
        raise ReproError("--memory-budget tunes HEP's tau; the streaming "
                         "baselines have no such knob (their state is "
                         "O(n + k) by construction)")
    if args.buffer_size is not None:
        raise ReproError("--buffer-size applies to HEP's streaming phase")
    if args.spill_dir is not None or args.spill_compression is not None:
        raise ReproError("--spill-dir/--spill-compression apply to HEP's "
                         "h2h spill; the baselines never spill")
    store = _make_store(args)
    result = run_job(_job_spec_from_args(args), store=store)
    print(f"partitioner        : {result.algorithm} (out-of-core)")
    print(f"source             : {args.graph} "
          f"(n={result.num_vertices:,} m={result.num_edges:,})")
    print(f"chunk size         : {result.chunk_size:,} edges")
    if args.prefetch:
        print(f"prefetch depth     : {args.prefetch} chunks")
    if result.passes > 1:
        print(f"stream passes      : {result.passes}")
    _print_cache(store, result)
    _print_ooc_quality(result, args.output)
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    """Counting/metrics passes alone: stream stats, optionally quality.

    The counting pass reports ``n``, ``m`` and degree statistics for
    any edge source.  With ``--parts`` (a per-edge partition-id file as
    written by ``partition --output``), the metrics pass additionally
    reports replication factor and edge balance.  ``--metrics-workers
    N`` runs both sweeps on N worker processes when the source is a
    shard manifest or flat binary edge file — bit-identical results.
    """
    if args.metrics_workers < 0:
        raise ReproError(
            f"--metrics-workers must be >= 0, got {args.metrics_workers}"
        )
    from repro.stream import open_edge_source, scan_stats
    from repro.stream.parallel_scan import effective_scan_workers

    opened = open_edge_source(args.graph, args.chunk_size)
    # The same predicate scan_stats/scan_quality evaluate internally, so
    # the printed path always matches the one that ran.
    parallel = effective_scan_workers(args.graph, args.metrics_workers)
    pool = None
    if parallel and args.shared_memory:
        from repro.stream import PersistentWorkerPool

        pool = PersistentWorkerPool(args.metrics_workers)
        pool.start()
    try:
        stats = scan_stats(
            args.graph, opened, args.metrics_workers, args.chunk_size,
            pool=pool,
        )
        print(f"source             : {opened.describe()}")
        print(f"universe           : n={stats.num_vertices:,} "
              f"m={stats.num_edges:,}")
        max_degree = int(stats.degrees.max()) if stats.num_vertices else 0
        isolated = int((stats.degrees == 0).sum())
        print(f"degrees            : mean {stats.mean_degree:.3f}, "
              f"max {max_degree:,}, isolated {isolated:,}")
        if parallel:
            style = ("warm shared-memory pool" if pool is not None
                     else "cold pools, --no-shared-memory")
            print(f"scan passes        : {parallel} worker processes "
                  f"({style})")
        else:
            print("scan passes        : sequential")
        if args.parts is None:
            return 0
        from repro.metrics import streamed_quality_report

        parts = np.loadtxt(args.parts, dtype=np.int64, ndmin=1)
        k = args.k if args.k is not None else int(max(parts.max(), 0)) + 1
        report = streamed_quality_report(
            args.graph,
            parts,
            k,
            workers=args.metrics_workers,
            chunk_size=args.chunk_size,
            memory_budget=args.memory_budget,
            stats=stats,  # the counting pass above; don't sweep twice
            pool=pool,
        )
    finally:
        if pool is not None:
            pool.shutdown()
    print(f"assignment         : {args.parts} (k={k})")
    print(f"replication factor : {report.replication_factor:.4f}")
    print(f"edge balance alpha : {report.edge_balance:.4f}")
    print(f"unassigned edges   : {report.num_unassigned:,}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    rows = []
    for name in args.partitioners:
        report = run_partitioner(name, graph, args.k)
        rows.append(report.row())
    print(format_table(rows, title=f"{graph.name or args.graph} at k={args.k}"))
    return 0


def _cmd_select_tau(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    budget = int(args.budget_kib * 1024)
    profile = precompute_profile(graph, args.k)
    print(format_table(profile.rows(), title="projected HEP footprint per tau"))
    tau, projected = select_tau(graph, budget, args.k)
    print(f"\nbudget {budget:,} bytes -> tau={tau:g} "
          f"(projected {projected:,} bytes)")
    return 0


def _cmd_extsort(args: argparse.Namespace) -> int:
    """External-sort an edge stream into a degree-ordered edge file.

    With ``--shards K`` the sorted stream lands pre-sharded: a manifest
    plus K shard files the concurrent reader consumes directly.
    """
    from repro.stream import external_sort_edges

    if args.compress is not None and args.shards is None:
        raise ReproError("--compress requires --shards (only the sharded "
                         "format carries zlib frames)")
    result = external_sort_edges(
        args.graph, args.output, order=args.order,
        chunk_size=args.chunk_size, num_shards=args.shards,
        compression=args.compress, scan_workers=args.scan_workers,
    )
    print(f"sorted             : {args.graph} -> {result.path}")
    print(f"order              : {result.order}")
    print(f"edges              : {result.num_edges:,} "
          f"(universe n={result.num_vertices:,})")
    print(f"sort runs          : {result.num_runs} "
          f"({result.run_bytes:,} temp bytes)")
    if result.num_shards:
        print(f"shards             : {result.num_shards}"
              + (f" ({result.compression} frames)"
                 if result.compression else ""))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Inspect a ``--trace`` JSONL file written by a previous run.

    ``trace summarize FILE`` aggregates the spans into a per-phase
    time/memory/counter breakdown table (see docs/observability.md for
    the format and the span taxonomy).
    """
    records = read_trace(args.file)
    print(format_summary(records))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: partitioning as a service (see docs/serve.md).

    Runs the asyncio service until SIGTERM/SIGINT and drains
    gracefully: queued jobs cancel, a running job stops at its next
    stage boundary, warm pools shut down, shared segments unlink.  With
    ``--self-test SOURCE`` the service instead starts on an ephemeral
    port, exercises itself end to end over HTTP (submit twice → one
    execution + a dedup hit, progress events, lookups), and exits.
    """
    import asyncio

    if args.self_test is not None:
        from repro.serve.selftest import run_self_test

        return asyncio.run(run_self_test(
            args.self_test, args.cache, algo=args.algo, k=args.k,
            workers=args.workers,
        ))
    from repro.serve.app import serve_forever

    return asyncio.run(serve_forever(
        args.cache, host=args.host, port=args.port,
        queue_size=args.queue_size, lru=args.artifact_lru,
    ))


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.id not in REGISTRY:
        print(f"unknown experiment {args.id!r}; available: {', '.join(REGISTRY)}")
        return 2
    result = REGISTRY[args.id]()
    print(result.format())
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    if args.export:
        from repro.graph.edgelist import write_binary_edgelist, write_text_edgelist

        graph = datasets.load(args.export)
        if args.format == "sharded":
            from repro.stream.shard import write_sharded_edges

            output = args.output or f"{args.export.upper()}.manifest.json"
            manifest = write_sharded_edges(
                graph, output, num_shards=args.shards,
                compression=args.compress,
            )
            print(f"exported {graph!r}")
            print(f"  -> {manifest.path} ({manifest.num_shards} shards"
                  + (f", {args.compress}" if args.compress else "")
                  + f", {manifest.total_bytes():,} bytes)")
            return 0
        if args.compress is not None:
            raise ReproError("--compress applies to --format sharded only")
        suffix = ".bin" if args.format == "binary" else ".txt"
        output = args.output or f"{args.export.upper()}{suffix}"
        if args.format == "binary":
            nbytes = write_binary_edgelist(graph, output)
        else:
            write_text_edgelist(graph, output)
            nbytes = Path(output).stat().st_size
        print(f"exported {graph!r}")
        print(f"  -> {output} ({args.format}, {nbytes:,} bytes)")
        return 0
    rows = []
    for name in datasets.available():
        spec = datasets.DATASETS[name]
        rows.append(
            {
                "name": name,
                "type": spec.kind,
                "paper_|V|": spec.paper_vertices,
                "paper_|E|": spec.paper_edges,
                "stand-in": spec.description,
            }
        )
    print(format_table(rows, title="Table 3 stand-in datasets"))
    return 0


def _trace_parent() -> argparse.ArgumentParser:
    """Parent parser: the ``--trace`` flag group shared by run commands."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--trace", default=None, metavar="FILE",
                        help="record a structured span trace (JSONL) of "
                             "this run; inspect it with `repro trace "
                             "summarize`")
    parent.add_argument("--trace-memory", choices=MEMORY_MODES, default=None,
                        help="additionally probe per-span memory deltas "
                             "(tracemalloc: allocation-exact, slower; "
                             "rss: process RSS, cheap; requires --trace)")
    return parent


def _source_parent(graph_help: str, chunk_help: str) -> argparse.ArgumentParser:
    """Parent parser: the edge-source flag group (positional + chunking)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("graph", help=graph_help)
    parent.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
                        help=chunk_help)
    return parent


def _budget_parent(budget_help: str) -> argparse.ArgumentParser:
    """Parent parser: the ``--memory-budget`` flag group."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--memory-budget", type=int, default=None,
                        metavar="BYTES", help=budget_help)
    return parent


def _worker_parent(metrics_help: str, shm_help: str) -> argparse.ArgumentParser:
    """Parent parser: the scan-worker flag group."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--metrics-workers", type=int, default=0, metavar="N",
                        help=metrics_help)
    parent.add_argument("--shared-memory",
                        action=argparse.BooleanOptionalAction, default=True,
                        help=shm_help)
    return parent


def _partition_parents() -> list[argparse.ArgumentParser]:
    """The shared flag groups ``partition`` and ``job describe`` use."""
    return [
        _source_parent(
            "dataset name or edge-list file",
            "edges per I/O chunk for --out-of-core",
        ),
        _budget_parent(
            "byte budget for HEP's in-memory structures; "
            "selects tau from the §4.4 grid (overrides --tau)"
        ),
        _worker_parent(
            "run the counting/metrics passes on N worker "
            "processes (--out-of-core; bit-identical results; "
            "0 = sequential, or the --workers count for the "
            "multi-worker drivers)",
            "serve worker state from a shared-memory segment "
            "on a warm process pool (the default); "
            "--no-shared-memory falls back to the pickled-"
            "delta pipe protocol (bit-identical, slower)",
        ),
    ]


def _add_partition_flags(p: argparse.ArgumentParser) -> None:
    """The algorithm/pipeline flags ``partition`` and ``job describe`` share."""
    p.add_argument("--k", type=int, default=32, help="number of partitions")
    p.add_argument("--method", "--algo", dest="method", default="HEP",
                   help=f"HEP or one of {', '.join(PARTITIONER_FACTORIES)}; "
                        "with --out-of-core: HEP or any registered "
                        "streaming baseline (`--algo help` lists them)")
    p.add_argument("--tau", type=float, default=None,
                   help="HEP degree threshold factor (default 10.0)")
    p.add_argument("--buffer-size", type=int, default=None,
                   help="buffered-scoring window for the streaming phase")
    p.add_argument("--spill-dir", default=None,
                   help="directory for the h2h spill file (default: temp dir)")
    p.add_argument("--spill-compression", choices=("zlib",), default=None,
                   help="compress the h2h spill file (zlib frames)")
    p.add_argument("--prefetch", type=int, default=0, metavar="DEPTH",
                   help="background-prefetch this many decoded chunks "
                        "ahead of the consumer (0 = off)")
    p.add_argument("--mmap", action="store_true",
                   help="serve chunks zero-copy from an np.memmap "
                        "(uncompressed binary edge files, with "
                        "--out-of-core)")
    p.add_argument("--passes", type=int, default=None,
                   help="stream passes for --algo Restreaming (default 3)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="partition with N worker processes, one per shard "
                        "assignment (--out-of-core; --algo HEP or HDRF)")
    p.add_argument("--batch", type=int, default=None, metavar="B",
                   help="edges each worker scores per BSP superstep "
                        "(default 8; requires --workers)")


def _cmd_job_describe(args: argparse.Namespace) -> int:
    """``repro job describe``: canonical JSON + content hash of a spec.

    Prints exactly what the runtime would hash and cache-key for this
    flag set — the canonical one-line JSON, the sha256 content hash,
    and the stage pipeline the planner would run.
    """
    from repro.runtime.plan import plan_job

    spec = _job_spec_from_args(args)
    print(spec.canonical_json())
    print(f"content hash       : {spec.content_hash()}")
    print(f"pipeline           : {plan_job(spec).describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid Edge Partitioner (SIGMOD'21) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("partition", help="partition a graph's edges",
                       parents=[*_partition_parents(), _trace_parent()])
    _add_partition_flags(p)
    p.add_argument("--output", help="write per-edge partition ids here")
    p.add_argument("--shards-dir", help="write one binary edge list per partition")
    p.add_argument("--out-of-core", action="store_true",
                   help="partition through the chunked streaming subsystem "
                        "(repro.stream); edge files are never fully loaded")
    p.add_argument("--cache", default=None, metavar="DIR",
                   help="content-addressed result cache: identical "
                        "out-of-core jobs are served from DIR without "
                        "recomputing (keyed by job hash + input digest)")
    p.set_defaults(func=_cmd_partition)

    p = sub.add_parser(
        "job",
        help="inspect runtime job specs (spec -> plan -> executor layer)",
    )
    job_sub = p.add_subparsers(dest="job_command", required=True)
    p2 = job_sub.add_parser(
        "describe",
        help="print a spec's canonical JSON, content hash, and stage plan",
        parents=_partition_parents(),
    )
    _add_partition_flags(p2)
    p2.set_defaults(func=_cmd_job_describe)

    p = sub.add_parser(
        "scan",
        help="counting/metrics passes alone: stream stats and "
             "(with --parts) assignment quality, out of core",
        parents=[
            _source_parent(
                "dataset name or edge-list file/manifest",
                "edges per I/O chunk for every pass",
            ),
            _budget_parent(
                "byte bound for the metrics cover; larger covers "
                "fall back to column-blocked sweeps"
            ),
            _worker_parent(
                "run both passes on N worker processes (shard "
                "manifests and flat binary edge files)",
                "run both passes on one warm worker pool, shipping "
                "the assignment through shared memory; "
                "--no-shared-memory forks a cold pool per pass",
            ),
            _trace_parent(),
        ],
    )
    p.add_argument("--parts", default=None, metavar="FILE",
                   help="per-edge partition-id file (one id per line, as "
                        "written by partition --output) to score")
    p.add_argument("--k", type=int, default=None,
                   help="partition count for --parts (default: max id + 1)")
    p.set_defaults(func=_cmd_scan)

    p = sub.add_parser("compare", help="run several partitioners side by side")
    p.add_argument("graph")
    p.add_argument("--k", type=int, default=32)
    p.add_argument(
        "--partitioners",
        nargs="+",
        default=["HEP-100", "HEP-10", "HEP-1", "HDRF", "DBH", "NE"],
    )
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("select-tau", help="pick tau for a memory budget (§4.4)")
    p.add_argument("graph")
    p.add_argument("--budget-kib", type=float, required=True)
    p.add_argument("--k", type=int, default=32)
    p.set_defaults(func=_cmd_select_tau)

    p = sub.add_parser(
        "extsort",
        help="rewrite an edge file in degree order with bounded memory",
        parents=[
            _source_parent(
                "dataset name or edge-list file",
                "edges per in-memory sort run",
            ),
            _trace_parent(),
        ],
    )
    p.add_argument("output", help="binary edge-list file to write")
    p.add_argument("--order", choices=EXTSORT_ORDERS, default="degree",
                   help="ordering to realize (degree-derived keys only)")
    p.add_argument("--shards", type=int, default=None, metavar="K",
                   help="split the sorted stream into K shard files plus "
                        "a manifest (output becomes <out>.manifest.json)")
    p.add_argument("--compress", choices=("zlib",), default=None,
                   help="zlib-framed shard files (requires --shards)")
    p.add_argument("--scan-workers", type=int, default=0, metavar="N",
                   help="run the counting pass (which keys the sort) on "
                        "N worker processes")
    p.set_defaults(func=_cmd_extsort)

    p = sub.add_parser(
        "trace",
        help="inspect a --trace JSONL file from a previous run",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    p2 = trace_sub.add_parser(
        "summarize",
        help="per-phase time/memory/counter breakdown of a trace",
    )
    p2.add_argument("file", help="trace JSONL file written by --trace")
    p2.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "serve",
        help="partitioning as a service: submit/poll/lookup over HTTP",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8642,
                   help="bind port (default 8642; 0 = ephemeral)")
    p.add_argument("--cache", default="serve-cache", metavar="DIR",
                   help="artifact-store root completed jobs land in "
                        "(default serve-cache)")
    p.add_argument("--queue-size", type=int, default=16, metavar="N",
                   help="max pending jobs before submits get 503")
    p.add_argument("--artifact-lru", type=int, default=4, metavar="N",
                   help="attached artifacts kept hot for lookups")
    p.add_argument("--self-test", default=None, metavar="SOURCE",
                   help="start on an ephemeral port, exercise the "
                        "service end to end against SOURCE, and exit")
    p.add_argument("--algo", default="HDRF",
                   help="self-test algorithm (default HDRF)")
    p.add_argument("--k", type=int, default=8,
                   help="self-test partition count (default 8)")
    p.add_argument("--workers", type=int, default=2,
                   help="self-test worker processes (default 2)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("id", help=f"one of: {', '.join(REGISTRY)}")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "datasets", help="list the Table 3 stand-ins or export one to disk"
    )
    p.add_argument("--export", metavar="NAME", default=None,
                   help="write the named stand-in as an on-disk edge file")
    p.add_argument("--format", choices=("text", "binary", "sharded"),
                   default="binary",
                   help="edge-file format for --export")
    p.add_argument("--output", default=None,
                   help="output path for --export "
                        "(default: <NAME>.bin/.txt/.manifest.json)")
    p.add_argument("--shards", type=int, default=4, metavar="K",
                   help="shard count for --format sharded")
    p.add_argument("--compress", choices=("zlib",), default=None,
                   help="zlib-framed shard files (--format sharded only)")
    p.set_defaults(func=_cmd_datasets)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch; ``--trace`` wraps the whole run."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    try:
        if trace_path is None:
            if getattr(args, "trace_memory", None) is not None:
                raise ReproError("--trace-memory requires --trace")
            return args.func(args)
        with tracing(trace_path, memory=args.trace_memory) as tracer:
            rc = args.func(args)
            spans = tracer.num_spans
        print(f"trace written      : {trace_path} ({spans} spans; "
              f"`repro trace summarize {trace_path}`)")
        return rc
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Quality metrics for hyperedge partitionings (vertex-cut analogue)."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.hypergraph.container import Hypergraph

__all__ = [
    "hyper_cover_matrix",
    "hyper_replication_factor",
    "hyper_balance",
    "assert_valid_hyper",
]


def hyper_cover_matrix(
    hypergraph: Hypergraph, parts: np.ndarray, k: int
) -> np.ndarray:
    """Boolean ``(k, n)``: partition ``p`` covers vertex ``v`` iff some
    hyperedge containing ``v`` is assigned to ``p``."""
    cover = np.zeros((k, hypergraph.num_vertices), dtype=bool)
    owner = np.repeat(parts, hypergraph.pin_counts())
    mask = owner >= 0
    cover[owner[mask], hypergraph.pins[mask]] = True
    return cover


def hyper_replication_factor(hypergraph: Hypergraph, parts: np.ndarray, k: int) -> float:
    """Mean replicas per covered vertex — the paper's RF, lifted to pins."""
    cover = hyper_cover_matrix(hypergraph, parts, k)
    replicas = cover.sum(axis=0)
    covered = hypergraph.vertex_degrees > 0
    denom = max(int(covered.sum()), 1)
    return float(replicas[covered].sum() / denom)


def hyper_balance(hypergraph: Hypergraph, parts: np.ndarray, k: int) -> float:
    """Hyperedge-count balance alpha (max load / ideal load)."""
    m = hypergraph.num_hyperedges
    if m == 0:
        return 1.0
    sizes = np.bincount(parts[parts >= 0], minlength=k)
    return float(sizes.max() / (m / k))


def assert_valid_hyper(
    hypergraph: Hypergraph, parts: np.ndarray, k: int, alpha: float | None = None
) -> None:
    """Every hyperedge assigned exactly once, ids in range, balance kept."""
    if parts.shape != (hypergraph.num_hyperedges,):
        raise ValidationError(
            f"parts shape {parts.shape} != ({hypergraph.num_hyperedges},)"
        )
    if (parts < 0).any():
        raise ValidationError(f"{int((parts < 0).sum())} hyperedges unassigned")
    if parts.size and parts.max() >= k:
        raise ValidationError(f"partition id {int(parts.max())} out of range")
    if alpha is not None and hypergraph.num_hyperedges:
        cap = int(np.ceil(alpha * hypergraph.num_hyperedges / k))
        sizes = np.bincount(parts, minlength=k)
        if sizes.max() > cap:
            raise ValidationError(
                f"partition size {int(sizes.max())} exceeds capacity {cap}"
            )

"""External sort: bounded-memory degree ordering of edge files."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graph import (
    generators,
    read_binary_edgelist,
    write_binary_edgelist,
    write_text_edgelist,
)
from repro.graph.ordering import edge_order
from repro.stream import (
    BinaryFileEdgeSource,
    StreamingPartitionerDriver,
    external_sort_edges,
)
from repro.partition import HdrfPartitioner
from strategies import graphs


@pytest.fixture(scope="module")
def skewed_graph():
    return generators.chung_lu(300, mean_degree=6, exponent=2.2, seed=5)


class TestMatchesEdgeOrder:
    """The output's natural order must realize edge_order exactly."""

    @pytest.mark.parametrize("order", ["degree", "adversarial"])
    @pytest.mark.parametrize("chunk_size", [7, 64, 100000])
    def test_orders_match(self, skewed_graph, tmp_path, order, chunk_size):
        src = tmp_path / "g.bin"
        out = tmp_path / f"{order}-{chunk_size}.bin"
        write_binary_edgelist(skewed_graph, src)
        result = external_sort_edges(
            src, out, order=order, chunk_size=chunk_size
        )
        assert result.num_edges == skewed_graph.num_edges
        expected = skewed_graph.edges[edge_order(skewed_graph, order)]
        got = read_binary_edgelist(out)
        assert np.array_equal(got.edges, expected)

    @settings(max_examples=15, deadline=None)
    @given(
        graph=graphs(min_edges=1, max_edges=80, max_vertices=20),
        chunk_size=st.integers(min_value=1, max_value=32),
    )
    def test_property_degree_order(self, graph, tmp_path_factory, chunk_size):
        tmp = tmp_path_factory.mktemp("extsort-prop")
        out = tmp / "sorted.bin"
        external_sort_edges(graph, out, order="degree", chunk_size=chunk_size)
        expected = graph.edges[edge_order(graph, "degree")]
        got = np.vstack(
            [c.pairs for c in BinaryFileEdgeSource(out, 1024)]
        ) if expected.size else np.empty((0, 2), dtype=np.int64)
        assert np.array_equal(got, expected)

    def test_small_chunks_force_merge(self, skewed_graph, tmp_path):
        src = tmp_path / "g.bin"
        out = tmp_path / "merged.bin"
        write_binary_edgelist(skewed_graph, src)
        result = external_sort_edges(src, out, order="degree", chunk_size=50)
        assert result.num_runs > 1  # genuinely exercised the k-way merge

    def test_run_count_beyond_open_file_cap(
        self, skewed_graph, tmp_path, monkeypatch
    ):
        """Regression: more runs than the fd cap triggers the multi-level
        merge instead of holding every run file open at once."""
        from repro.stream import extsort as mod

        monkeypatch.setattr(mod, "MAX_OPEN_RUNS", 4)
        src = tmp_path / "g.bin"
        out = tmp_path / "collapsed.bin"
        write_binary_edgelist(skewed_graph, src)
        result = external_sort_edges(src, out, order="degree", chunk_size=25)
        assert result.num_runs > 16  # several collapse levels
        expected = skewed_graph.edges[edge_order(skewed_graph, "degree")]
        assert np.array_equal(read_binary_edgelist(out).edges, expected)

    def test_shuffled_source_same_tie_break(self, skewed_graph, tmp_path):
        """Regression: a reordered chunk source must still produce the
        canonical (key, eid) order, not the arrival order of ties."""
        src = tmp_path / "g.bin"
        out = tmp_path / "from-shuffled.bin"
        write_binary_edgelist(skewed_graph, src)
        shuffled = BinaryFileEdgeSource(src, 50, order="shuffled", seed=3)
        external_sort_edges(shuffled, out, order="degree", chunk_size=50)
        expected = skewed_graph.edges[edge_order(skewed_graph, "degree")]
        assert np.array_equal(read_binary_edgelist(out).edges, expected)

    def test_text_source_and_natural_reencode(self, skewed_graph, tmp_path):
        src = tmp_path / "g.txt"
        out = tmp_path / "copy.bin"
        write_text_edgelist(skewed_graph, src)
        result = external_sort_edges(src, out, order="natural", chunk_size=77)
        assert result.num_runs == 0
        got = read_binary_edgelist(out)
        assert np.array_equal(got.edges, skewed_graph.edges)


class TestFeedsDrivers:
    def test_degree_ordered_file_streams_like_reordered_graph(
        self, skewed_graph, tmp_path
    ):
        """A sorted file fed to the OOC driver equals HDRF on the
        in-memory degree-reordered graph — degree-aware ordering is now
        available without ever materializing the edge list."""
        from repro.graph.ordering import reorder_edges

        out = tmp_path / "deg.bin"
        external_sort_edges(skewed_graph, out, order="degree", chunk_size=64)
        reordered = reorder_edges(skewed_graph, edge_order(skewed_graph, "degree"))
        expected = HdrfPartitioner().partition(reordered, 4)
        result = StreamingPartitionerDriver("HDRF", chunk_size=64).partition(
            out, 4
        )
        assert np.array_equal(result.parts, expected.parts)


class TestShardedOutput:
    """``num_shards`` lands the sorted stream pre-sharded (manifest + K)."""

    @pytest.mark.parametrize("compression", [None, "zlib"])
    @pytest.mark.parametrize("order", ["natural", "degree"])
    def test_sharded_equals_flat(
        self, skewed_graph, tmp_path, order, compression
    ):
        from repro.stream import ShardedEdgeSource

        flat = tmp_path / "flat.bin"
        external_sort_edges(skewed_graph, flat, order=order, chunk_size=64)
        result = external_sort_edges(
            skewed_graph, tmp_path / "sharded.manifest.json", order=order,
            chunk_size=64, num_shards=3, compression=compression,
        )
        assert result.num_shards == 3
        assert result.path.name == "sharded.manifest.json"
        expected = np.vstack([c.pairs for c in BinaryFileEdgeSource(flat, 97)])
        got = np.vstack(
            [c.pairs for c in ShardedEdgeSource(result.path, 97)]
        )
        assert np.array_equal(got, expected)

    def test_sharded_output_feeds_driver(self, skewed_graph, tmp_path):
        result = external_sort_edges(
            skewed_graph, tmp_path / "deg.manifest.json", order="degree",
            chunk_size=64, num_shards=4,
        )
        flat = tmp_path / "deg.bin"
        external_sort_edges(skewed_graph, flat, order="degree", chunk_size=64)
        expected = StreamingPartitionerDriver("HDRF", chunk_size=64).partition(
            flat, 4
        )
        got = StreamingPartitionerDriver("HDRF", chunk_size=64).partition(
            str(result.path), 4
        )
        assert np.array_equal(got.parts, expected.parts)

    def test_manifest_records_universe(self, skewed_graph, tmp_path):
        from repro.stream import read_shard_manifest

        result = external_sort_edges(
            skewed_graph, tmp_path / "g.manifest.json", order="natural",
            num_shards=2,
        )
        manifest = read_shard_manifest(result.path)
        assert manifest.num_vertices == skewed_graph.num_vertices

    def test_compression_without_shards_rejected(self, skewed_graph, tmp_path):
        with pytest.raises(ConfigurationError):
            external_sort_edges(
                skewed_graph, tmp_path / "x.bin", compression="zlib"
            )

    def test_bad_shard_count_rejected(self, skewed_graph, tmp_path):
        with pytest.raises(ConfigurationError):
            external_sort_edges(
                skewed_graph, tmp_path / "x.manifest.json", num_shards=0
            )


class TestErrors:
    def test_unsupported_order(self, skewed_graph, tmp_path):
        with pytest.raises(ConfigurationError):
            external_sort_edges(skewed_graph, tmp_path / "x.bin", order="bfs")

    def test_bad_chunk_size(self, skewed_graph, tmp_path):
        with pytest.raises(ConfigurationError):
            external_sort_edges(
                skewed_graph, tmp_path / "x.bin", chunk_size=0
            )

    @pytest.mark.parametrize("order", ["natural", "degree"])
    def test_in_place_sort_rejected(self, skewed_graph, tmp_path, order):
        """Regression: sorting a file onto itself must not destroy it."""
        src = tmp_path / "g.bin"
        write_binary_edgelist(skewed_graph, src)
        size = src.stat().st_size
        with pytest.raises(ConfigurationError):
            external_sort_edges(src, src, order=order)
        assert src.stat().st_size == size  # input untouched

    def test_failed_sort_preserves_previous_output(
        self, skewed_graph, tmp_path
    ):
        """Regression: the output is opened lazily, so a sort failing
        during run generation must not truncate a pre-existing file."""
        from repro.errors import GraphFormatError
        from repro.stream import EdgeChunkSource, InMemoryEdgeSource

        class FlakySource(EdgeChunkSource):
            """Counting pass succeeds; the second sweep blows up."""

            def __init__(self, graph):
                self.inner = InMemoryEdgeSource(graph, 64)
                self.chunk_size = 64
                self.passes = 0

            def __iter__(self):
                self.passes += 1
                if self.passes > 1:
                    raise GraphFormatError("disk went away")
                yield from self.inner

        out = tmp_path / "out.bin"
        external_sort_edges(skewed_graph, out, order="degree", chunk_size=64)
        before = out.read_bytes()
        assert before  # a previous successful sort exists
        with pytest.raises(GraphFormatError, match="disk went away"):
            external_sort_edges(
                FlakySource(skewed_graph), out, order="degree", chunk_size=64
            )
        assert out.read_bytes() == before  # prior output untouched

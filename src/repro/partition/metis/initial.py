"""Initial bisection of the coarsest graph: greedy graph growing.

A region grows from a seed vertex, always absorbing the boundary vertex
with the best gain (internal minus external edge weight), until it holds
the target fraction of the total vertex weight.  Several seeds are tried
and the smallest cut wins — the standard GGGP scheme of multilevel
partitioners.
"""

from __future__ import annotations

import numpy as np

from repro._ds import IndexedMinHeap
from repro.partition.metis.level import LevelGraph

__all__ = ["grow_bisection"]


def grow_bisection(
    level: LevelGraph,
    target_fraction: float,
    rng: np.random.Generator,
    tries: int = 4,
) -> np.ndarray:
    """Bisect ``level`` into sides {0, 1}; side 0 targets
    ``target_fraction`` of the vertex weight.  Returns the side array."""
    best_side: np.ndarray | None = None
    best_score = np.inf
    n = level.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int8)
    total = level.total_weight
    target = target_fraction * total
    seeds = rng.choice(n, size=min(tries, n), replace=False)
    for seed in seeds.tolist():
        side = _grow_from(level, int(seed), target_fraction)
        cut = level.cut_weight(side)
        # Rank candidates by cut, but punish imbalance: a seed stranded in
        # a tiny component yields a zero-cut, useless bisection otherwise.
        grown = float(level.vertex_weights[side == 0].sum())
        imbalance = abs(grown - target) / max(total, 1.0)
        score = cut + imbalance * total
        if score < best_score:
            best_score = score
            best_side = side
    assert best_side is not None
    return best_side


def _grow_from(level: LevelGraph, seed: int, target_fraction: float) -> np.ndarray:
    n = level.num_vertices
    target = target_fraction * level.total_weight
    side = np.ones(n, dtype=np.int8)  # 1 = outside, 0 = grown region
    grown_weight = 0.0

    # Min-heap on negated gain: gain = external - internal cost of adding.
    heap = IndexedMinHeap()
    heap.push(seed, priority=0)
    restart_cursor = 0  # for hopping across disconnected components

    while grown_weight < target:
        if not heap:
            # Component exhausted: restart growth from any ungrown vertex
            # (disconnected graphs must still reach the target weight).
            while restart_cursor < n and side[restart_cursor] == 0:
                restart_cursor += 1
            if restart_cursor >= n:
                break
            heap.push(restart_cursor, priority=0)
            continue
        v, _ = heap.pop_min()
        if side[v] == 0:
            continue
        side[v] = 0
        grown_weight += float(level.vertex_weights[v])
        for w, weight in level.adj[v].items():
            if side[w] == 1:
                # Adding w later now costs less: more of its edges are
                # internal.  Priority = -(internal weight), so heavier
                # attachment to the region pops first.
                scaled = int(weight * 16)
                if w in heap:
                    heap.update(w, heap.priority(w) - scaled)
                else:
                    heap.push(w, -scaled)
    return side

"""Buffered scoring window for the streaming phase.

Plain stateful streaming (Algorithm 4) commits to each edge the moment
it arrives.  Buffered streaming edge partitioning (Chhabra et al., 2024)
instead holds a window of ``buffer_size`` edges, ranks the whole window
against the *current* state, places only the best-scoring prefix, and
re-enqueues the rest — edges that would score badly right now get
another chance after the state has evolved.  ``buffer_size`` is the
quality/throughput knob: larger windows approach the quality of an
informed re-ordering at the cost of re-scoring work, ``buffer_size=None``
degenerates to the exact per-edge stream order (bit-identical to
:func:`~repro.partition.hdrf.hdrf_stream`).

The ranking step is one vectorized
:func:`~repro.partition.scoring.hdrf_best_scores` evaluation over the
window; the placed prefix is then committed edge by edge with fresh
per-edge scores, so the hard capacity constraint is never violated.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.partition.hdrf import hdrf_stream
from repro.partition.scoring import hdrf_best_scores
from repro.partition.state import StreamingState

__all__ = ["buffered_hdrf_stream", "stream_chunks_through_hdrf"]

#: fraction of the ranked window placed per round
DEFAULT_PLACE_FRACTION = 0.5


def buffered_hdrf_stream(
    state: StreamingState,
    chunks: Iterable[tuple[np.ndarray, np.ndarray]],
    parts_out: np.ndarray,
    buffer_size: int,
    lam: float = 1.1,
    eps: float = 1.0,
    place_fraction: float = DEFAULT_PLACE_FRACTION,
) -> int:
    """Stream ``(pairs, eids)`` chunks through a buffered scoring window.

    Fills the window to ``buffer_size`` edges, ranks it with one
    vectorized scoring pass, places the best-scoring
    ``ceil(place_fraction * window)`` edges, and re-enqueues the rest in
    rank order.  At least one edge is placed per round, so the loop
    always terminates.  Returns the number of edges placed.
    """
    if buffer_size < 1:
        raise ConfigurationError(f"buffer_size must be >= 1, got {buffer_size}")
    if not (0.0 < place_fraction <= 1.0):
        raise ConfigurationError(
            f"place_fraction must be in (0, 1], got {place_fraction}"
        )
    feed: Iterator[tuple[np.ndarray, np.ndarray]] = iter(chunks)
    held_pairs = np.empty((0, 2), dtype=np.int64)
    held_eids = np.empty(0, dtype=np.int64)
    exhausted = False
    placed = 0
    while True:
        # Refill the window from the chunk feed.
        while not exhausted and held_pairs.shape[0] < buffer_size:
            try:
                pairs, eids = next(feed)
            except StopIteration:
                exhausted = True
                break
            held_pairs = np.vstack([held_pairs, np.asarray(pairs, dtype=np.int64)])
            held_eids = np.concatenate(
                [held_eids, np.asarray(eids, dtype=np.int64)]
            )
        if held_pairs.shape[0] == 0:
            return placed
        window = min(buffer_size, held_pairs.shape[0])
        best = hdrf_best_scores(
            state, held_pairs[:window, 0], held_pairs[:window, 1], lam=lam, eps=eps
        )
        rank = np.argsort(-best, kind="stable")
        n_place = max(1, int(np.ceil(place_fraction * window)))
        if exhausted and held_pairs.shape[0] <= window:
            # Tail flush: nothing left to defer for.
            n_place = window
        chosen = rank[:n_place]
        # Commit sequentially with fresh per-edge scores (plain Algorithm 4
        # over the chosen prefix), so capacity is never violated.
        hdrf_stream(
            state, held_pairs[chosen], held_eids[chosen], parts_out,
            lam=lam, eps=eps,
        )
        placed += n_place
        # Deferred window edges (in rank order) go back to the front of
        # the queue, ahead of the not-yet-scored overflow.
        deferred = rank[n_place:]
        held_pairs = np.vstack([held_pairs[deferred], held_pairs[window:]])
        held_eids = np.concatenate([held_eids[deferred], held_eids[window:]])


def stream_chunks_through_hdrf(
    state: StreamingState,
    chunks: Iterable[tuple[np.ndarray, np.ndarray]],
    parts_out: np.ndarray,
    lam: float = 1.1,
    eps: float = 1.0,
    buffer_size: int | None = None,
) -> int:
    """Phase-two dispatcher: plain or buffered HDRF over an edge-chunk feed.

    With ``buffer_size=None`` every chunk runs through
    :func:`~repro.partition.hdrf.hdrf_stream` against the shared state —
    exactly the per-edge stream order of in-memory HEP, which is what the
    equivalence property tests pin down.  Returns edges placed.
    """
    if buffer_size is not None:
        return buffered_hdrf_stream(
            state, chunks, parts_out, buffer_size, lam=lam, eps=eps
        )
    placed = 0
    for pairs, eids in chunks:
        hdrf_stream(state, pairs, eids, parts_out, lam=lam, eps=eps)
        placed += int(np.asarray(pairs).shape[0])
    return placed

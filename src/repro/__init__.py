"""repro — Hybrid Edge Partitioner (HEP) reproduction library.

A from-scratch Python implementation of *Hybrid Edge Partitioner:
Partitioning Large Power-Law Graphs under Memory Constraints* (Mayer &
Jacobsen, SIGMOD 2021): the HEP system (NE++ in-memory phase + informed
HDRF streaming), seven baseline partitioner families, and the evaluation
substrates (synthetic Table 3 datasets, a Spark/GraphX-style processing
simulator and a paging simulator).

Quickstart::

    from repro import HepPartitioner, datasets, replication_factor

    graph = datasets.load("OK")
    assignment = HepPartitioner(tau=10.0).partition(graph, k=32)
    print(replication_factor(assignment), assignment.balance())
"""

from repro.core import (
    HepPartitioner,
    NePlusPlusPartitioner,
    hep_memory_bytes,
    memory_model_for,
    precompute_profile,
    run_ne_plus_plus,
    select_tau,
)
from repro.graph import (
    CsrGraph,
    Graph,
    build_pruned_csr,
    read_binary_edgelist,
    read_text_edgelist,
    write_binary_edgelist,
    write_text_edgelist,
)
from repro.graph import datasets, generators
from repro.metrics import (
    assert_valid,
    edge_balance,
    replication_factor,
    vertex_balance,
)
from repro.partition import (
    AdwisePartitioner,
    DbhPartitioner,
    DnePartitioner,
    GreedyPartitioner,
    GridPartitioner,
    HdrfPartitioner,
    MetisPartitioner,
    NePartitioner,
    PartitionAssignment,
    Partitioner,
    RandomStreamPartitioner,
    RestreamingHdrfPartitioner,
    SimpleHybridPartitioner,
    SnePartitioner,
)
from repro.stream import OutOfCoreHep, SpillFile, open_edge_source

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core system
    "HepPartitioner",
    "NePlusPlusPartitioner",
    "run_ne_plus_plus",
    "select_tau",
    "precompute_profile",
    "hep_memory_bytes",
    "memory_model_for",
    # graphs
    "Graph",
    "CsrGraph",
    "build_pruned_csr",
    "read_binary_edgelist",
    "write_binary_edgelist",
    "read_text_edgelist",
    "write_text_edgelist",
    "datasets",
    "generators",
    # metrics
    "replication_factor",
    "edge_balance",
    "vertex_balance",
    "assert_valid",
    # partitioners
    "Partitioner",
    "PartitionAssignment",
    "HdrfPartitioner",
    "GreedyPartitioner",
    "DbhPartitioner",
    "GridPartitioner",
    "AdwisePartitioner",
    "RandomStreamPartitioner",
    "NePartitioner",
    "SnePartitioner",
    "DnePartitioner",
    "MetisPartitioner",
    "SimpleHybridPartitioner",
    "RestreamingHdrfPartitioner",
    # out-of-core streaming I/O
    "OutOfCoreHep",
    "SpillFile",
    "open_edge_source",
]

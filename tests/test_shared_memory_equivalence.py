"""Differential harness pinning the shared-memory protocol to the pipe path.

PR 7 swaps the BSP data plane: worker batches land in scratch lanes of
one shared segment and the coordinator publishes snapshots by flipping a
double buffer, instead of pickling deltas over pipes.  The load-bearing
property is that nothing observable changes — the shared-memory run, the
PR 4 pipe run, and the in-process ``bsp_hdrf_stream`` oracle are
**bit-identical** for any graph × workers × batch, for informed HDRF and
for HEP's phase two alike.  This file pins that three-way equivalence
(fixed schedules plus a Hypothesis property), the commit/aging contract
of :class:`~repro.parallel.shm.SharedState`, the bitwise equality of
:class:`~repro.parallel.kernel.FusedBatchScorer` against the reference
scorer, warm-pool reuse across jobs, and the no-leaked-segments
invariant the CI gate also enforces.
"""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings

from strategies import bsp_schedules, power_law_graphs

from repro.errors import ConfigurationError
from repro.graph.generators import chung_lu
from repro.parallel import (
    FusedBatchScorer,
    SharedArray,
    SharedState,
    bsp_hdrf_stream,
)
from repro.parallel.kernel import apply_delta, score_batch_on_snapshot
from repro.partition.base import capacity_bound
from repro.partition.state import StreamingState
from repro.stream import (
    DEFAULT_CHUNK_SIZE,
    MultiWorkerHep,
    MultiWorkerStreamingDriver,
    OutOfCoreHep,
    PersistentWorkerPool,
    open_edge_source,
    plan_worker_segments,
    run_bsp_shared,
    scan_stats,
    write_sharded_edges,
)
from repro.stream.scan import scan_source


@pytest.fixture(scope="module")
def graph():
    return chung_lu(400, mean_degree=8, exponent=2.1, seed=23, name="shm")


@pytest.fixture(scope="module")
def manifest(graph, tmp_path_factory):
    out = tmp_path_factory.mktemp("shm") / "shm.manifest.json"
    return write_sharded_edges(graph, out, num_shards=4)


def _oracle_parts(graph, workers, batch, streams, k=8):
    capacity = capacity_bound(graph.num_edges, k, 1.0)
    state = StreamingState(
        graph.num_vertices, k, capacity, exact_degrees=graph.degrees
    )
    parts = np.full(graph.num_edges, -1, dtype=np.int32)
    bsp_hdrf_stream(
        state, graph.edges, np.arange(graph.num_edges), parts,
        workers, batch=batch, streams=streams,
    )
    return parts


def _psm_segments():
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return None
    return {p.name for p in shm_dir.glob("psm_*")}


class TestSharedArray:
    def test_create_attach_roundtrip(self):
        data = np.arange(12, dtype=np.int32).reshape(3, 4)
        owner = SharedArray.create(data)
        try:
            np.testing.assert_array_equal(owner.array, data)
            reader = SharedArray.attach(owner.name, (3, 4), np.int32)
            np.testing.assert_array_equal(reader.array, data)
            # Same segment: a write on one side is visible on the other.
            owner.array[1, 2] = -7
            assert reader.array[1, 2] == -7
            reader.close()
        finally:
            owner.close()
            owner.unlink()

    def test_attach_size_mismatch_rejected(self):
        owner = SharedArray.create(np.zeros(4, dtype=np.int8))
        try:
            with pytest.raises(ConfigurationError, match="bytes"):
                SharedArray.attach(owner.name, (4,), np.int64)
        finally:
            owner.close()
            owner.unlink()

    def test_view_invalid_after_close(self):
        owner = SharedArray.create(np.zeros(3))
        owner.close()
        with pytest.raises(ConfigurationError, match="after close"):
            owner.array
        owner.unlink()

    def test_unlink_is_idempotent_and_owner_only(self):
        owner = SharedArray.create(np.ones(2))
        reader = SharedArray.attach(owner.name, (2,), np.float64)
        reader.close()
        reader.unlink()  # non-owner: a no-op, segment survives
        again = SharedArray.attach(owner.name, (2,), np.float64)
        again.close()
        owner.close()
        owner.unlink()
        owner.unlink()  # idempotent


class TestSharedState:
    def _make(self, n=30, k=4, workers=2, batch=4, seed=7):
        rng = np.random.default_rng(seed)
        degrees = rng.integers(1, 10, size=n).astype(np.int64)
        replicas = np.zeros((k, n), dtype=bool)
        loads = np.zeros(k, dtype=np.int64)
        shared = SharedState.create(
            n, k, workers, batch, degrees, replicas, loads
        )
        return shared, rng, degrees

    def test_segment_bytes_matches_mapped_views(self):
        shared, _, _ = self._make()
        try:
            assert shared.nbytes == SharedState.segment_bytes(30, 4, 2, 4)
        finally:
            shared.close()
            shared.unlink()

    def test_create_seeds_both_buffers(self):
        rng = np.random.default_rng(3)
        replicas = rng.random((4, 30)) < 0.2
        loads = rng.integers(0, 9, size=4).astype(np.int64)
        degrees = np.ones(30, dtype=np.int64)
        shared = SharedState.create(30, 4, 2, 4, degrees, replicas, loads)
        try:
            for index in range(2):
                snap_replicas, snap_loads = shared.snapshot(index)
                np.testing.assert_array_equal(snap_replicas, replicas)
                np.testing.assert_array_equal(snap_loads, loads)
            # Views pin the mapping; drop them before close() so the
            # segment's finalizer never sees exported pointers.
            del snap_replicas, snap_loads
        finally:
            shared.close()
            shared.unlink()

    def test_commit_ages_buffers_like_live_state(self):
        # The double-buffer replay contract: after every commit the
        # *published* buffer equals a live state that applied every
        # delta so far, even though each buffer is two commits stale.
        shared, rng, _ = self._make()
        live_replicas = np.zeros((4, 30), dtype=bool)
        live_loads = np.zeros(4, dtype=np.int64)
        try:
            for _ in range(7):
                us = rng.integers(0, 30, size=5)
                vs = rng.integers(0, 30, size=5)
                ps = rng.integers(0, 4, size=5)
                apply_delta(live_replicas, live_loads, us, vs, ps)
                published = shared.commit(us, vs, ps)
                assert published == shared.published
                snap_replicas, snap_loads = shared.snapshot(published)
                np.testing.assert_array_equal(snap_replicas, live_replicas)
                np.testing.assert_array_equal(snap_loads, live_loads)
            del snap_replicas, snap_loads
        finally:
            shared.close()
            shared.unlink()

    def test_attached_reader_sees_committed_snapshots(self):
        shared, rng, degrees = self._make()
        reader = SharedState.attach(shared.name, 30, 4, 2, 4)
        try:
            np.testing.assert_array_equal(reader.degrees, degrees)
            us = rng.integers(0, 30, size=5)
            vs = rng.integers(0, 30, size=5)
            ps = rng.integers(0, 4, size=5)
            published = shared.commit(us, vs, ps)
            own_replicas, own_loads = shared.snapshot(published)
            far_replicas, far_loads = reader.snapshot(published)
            np.testing.assert_array_equal(far_replicas, own_replicas)
            np.testing.assert_array_equal(far_loads, own_loads)
            del own_replicas, own_loads, far_replicas, far_loads
        finally:
            reader.close()
            shared.close()
            shared.unlink()

    def test_lane_roundtrip_fast_and_slow(self):
        shared, rng, _ = self._make(batch=6)
        try:
            eids = np.arange(4, dtype=np.int64)
            us = rng.integers(0, 30, size=4)
            vs = rng.integers(0, 30, size=4)
            ps = rng.integers(0, 4, size=4)
            shared.write_batch(1, eids, us, vs, ps=ps)
            got = shared.read_batch(1, 4, slow=False)
            for want, have in zip((eids, us, vs, ps), got):
                np.testing.assert_array_equal(have, want)
            scores = rng.random((3, 4))
            shared.write_batch(0, eids[:3], us[:3], vs[:3], scores=scores)
            *_, got_scores = shared.read_batch(0, 3, slow=True)
            np.testing.assert_array_equal(
                got_scores.view(np.uint64), scores.view(np.uint64)
            )
            del got, got_scores, have, _
        finally:
            shared.close()
            shared.unlink()

    def test_attach_size_mismatch_rejected(self):
        shared, _, _ = self._make()
        try:
            with pytest.raises(ConfigurationError, match="bytes"):
                SharedState.attach(shared.name, 30_000, 4, 2, 4)
        finally:
            shared.close()
            shared.unlink()

    def test_dimensions_validated(self):
        degrees = np.ones(4, dtype=np.int64)
        replicas = np.zeros((2, 4), dtype=bool)
        loads = np.zeros(2, dtype=np.int64)
        with pytest.raises(ConfigurationError, match=">= 1"):
            SharedState.create(4, 2, 0, 4, degrees, replicas, loads)
        with pytest.raises(ConfigurationError, match=">= 1"):
            SharedState.create(4, 2, 2, 0, degrees, replicas, loads)

    def test_unlink_is_idempotent(self):
        shared, _, _ = self._make()
        shared.close()
        shared.unlink()
        shared.unlink()


class TestFusedBatchScorer:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bitwise_equal_to_reference(self, seed):
        rng = np.random.default_rng(seed)
        n, k, b = 50, 6, 16
        replicas = rng.random((k, n)) < 0.3
        loads = rng.integers(0, 100, size=k).astype(np.int64)
        # Keep zero-degree vertices so the theta = 0.5 branch is hit.
        degrees = rng.integers(0, 12, size=n).astype(np.int64)
        us = rng.integers(0, n, size=b)
        vs = rng.integers(0, n, size=b)
        scorer = FusedBatchScorer(k, b, lam=1.1, eps=1.0)
        got = scorer.scores(replicas, loads, degrees, us, vs)
        want = score_batch_on_snapshot(
            replicas, loads, degrees, us, vs, 1.1, 1.0
        )
        np.testing.assert_array_equal(
            got.view(np.uint64), want.view(np.uint64)
        )

    def test_short_batches_reuse_the_buffer(self):
        rng = np.random.default_rng(9)
        n, k = 20, 4
        replicas = rng.random((k, n)) < 0.5
        loads = rng.integers(0, 10, size=k).astype(np.int64)
        degrees = rng.integers(1, 5, size=n).astype(np.int64)
        scorer = FusedBatchScorer(k, max_batch=8, lam=1.1, eps=1.0)
        us = rng.integers(0, n, size=3)
        vs = rng.integers(0, n, size=3)
        first = scorer.scores(replicas, loads, degrees, us, vs)
        assert first.shape == (3, k)
        kept = first.copy()
        # The next call overwrites the shared buffer in place — callers
        # must consume or copy rows first (the documented contract).
        scorer.scores(replicas, loads, degrees, vs, us)
        assert first.base is not None
        np.testing.assert_array_equal(
            kept,
            score_batch_on_snapshot(
                replicas, loads, degrees, us, vs, 1.1, 1.0
            ),
        )

    def test_dimensions_validated(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            FusedBatchScorer(0, 8, lam=1.1, eps=1.0)
        with pytest.raises(ConfigurationError, match=">= 1"):
            FusedBatchScorer(4, 0, lam=1.1, eps=1.0)


class TestHdrfDifferential:
    @pytest.mark.parametrize(
        "workers,batch", [(1, 1), (1, 8), (2, 4), (4, 8)]
    )
    def test_shm_pipe_and_oracle_identical(
        self, graph, manifest, workers, batch
    ):
        shm = MultiWorkerStreamingDriver(
            workers=workers, batch=batch, shared_memory=True
        ).partition(manifest.path, 8)
        pipe = MultiWorkerStreamingDriver(
            workers=workers, batch=batch, shared_memory=False
        ).partition(manifest.path, 8)
        np.testing.assert_array_equal(shm.parts, pipe.parts)
        assert shm.replication_factor == pipe.replication_factor
        assert shm.edge_balance == pipe.edge_balance
        _, streams, _, _ = plan_worker_segments(manifest.path, workers)
        oracle = _oracle_parts(graph, workers, batch, streams)
        np.testing.assert_array_equal(shm.parts, oracle)

    def test_no_segment_leaks_after_runs(self, manifest):
        before = _psm_segments()
        if before is None:
            pytest.skip("no /dev/shm on this platform")
        MultiWorkerStreamingDriver(workers=2, batch=8).partition(
            manifest.path, 8
        )
        after = _psm_segments()
        assert after - before == set()


class TestHepDifferential:
    def test_shm_matches_pipe(self, manifest):
        shm = MultiWorkerHep(workers=2, batch=8, tau=2.0).partition(
            manifest.path, 8
        )
        pipe = MultiWorkerHep(
            workers=2, batch=8, tau=2.0, shared_memory=False
        ).partition(manifest.path, 8)
        np.testing.assert_array_equal(shm.parts, pipe.parts)
        assert shm.replication_factor == pipe.replication_factor
        assert shm.edge_balance == pipe.edge_balance

    def test_single_worker_matches_sequential_hep(self, manifest):
        seq = OutOfCoreHep(tau=2.0).partition(manifest.path, 8)
        shm = MultiWorkerHep(workers=1, batch=1, tau=2.0).partition(
            manifest.path, 8
        )
        np.testing.assert_array_equal(shm.parts, seq.parts)
        assert shm.replication_factor == seq.replication_factor


class TestWarmPoolReuse:
    def test_one_pool_serves_many_jobs_identically(self, graph, manifest):
        segments, streams, m, _ = plan_worker_segments(manifest.path, 2)
        oracle = _oracle_parts(graph, 2, 8, streams)
        sequential = scan_source(
            open_edge_source(manifest.path, DEFAULT_CHUNK_SIZE)
        )
        pool = PersistentWorkerPool(2)
        pool.start()
        try:
            for _ in range(3):
                capacity = capacity_bound(m, 8, 1.0)
                state = StreamingState(
                    graph.num_vertices, 8, capacity,
                    exact_degrees=graph.degrees,
                )
                parts = np.full(m, -1, dtype=np.int32)
                run_bsp_shared(pool, segments, state, parts, batch=8)
                np.testing.assert_array_equal(parts, oracle)
            # The same warm workers then run a counting sweep.
            stats = scan_stats(
                manifest.path,
                open_edge_source(manifest.path, DEFAULT_CHUNK_SIZE),
                2, pool=pool,
            )
        finally:
            pool.shutdown()
        assert stats.num_edges == sequential.num_edges
        np.testing.assert_array_equal(stats.degrees, sequential.degrees)

    def test_narrow_schedule_on_a_wide_pool(self, graph, manifest):
        # Spare pool workers get empty segment lists; the schedule is
        # len(segments) wide, so results match the 2-worker oracle.
        segments, streams, m, _ = plan_worker_segments(manifest.path, 2)
        oracle = _oracle_parts(graph, 2, 8, streams)
        pool = PersistentWorkerPool(4)
        pool.start()
        try:
            capacity = capacity_bound(m, 8, 1.0)
            state = StreamingState(
                graph.num_vertices, 8, capacity,
                exact_degrees=graph.degrees,
            )
            parts = np.full(m, -1, dtype=np.int32)
            run_bsp_shared(pool, segments, state, parts, batch=8)
        finally:
            pool.shutdown()
        np.testing.assert_array_equal(parts, oracle)

    def test_schedule_wider_than_pool_rejected(self, graph, manifest):
        segments, _, m, _ = plan_worker_segments(manifest.path, 4)
        pool = PersistentWorkerPool(2)
        pool.start()
        try:
            capacity = capacity_bound(m, 8, 1.0)
            state = StreamingState(
                graph.num_vertices, 8, capacity,
                exact_degrees=graph.degrees,
            )
            parts = np.full(m, -1, dtype=np.int32)
            with pytest.raises(ConfigurationError, match="pool has only"):
                run_bsp_shared(pool, segments, state, parts, batch=8)
        finally:
            pool.shutdown()


class TestEquivalenceProperty:
    @settings(max_examples=4, deadline=None)
    @given(graph=power_law_graphs(max_vertices=60), schedule=bsp_schedules())
    def test_shared_memory_never_changes_assignments(
        self, tmp_path_factory, graph, schedule
    ):
        workers, batch, num_shards = schedule
        out = tmp_path_factory.mktemp("shm-prop") / "g.manifest.json"
        manifest = write_sharded_edges(graph, out, num_shards=num_shards)
        shm = MultiWorkerStreamingDriver(
            workers=workers, batch=batch, shared_memory=True
        ).partition(manifest.path, 4)
        pipe = MultiWorkerStreamingDriver(
            workers=workers, batch=batch, shared_memory=False
        ).partition(manifest.path, 4)
        np.testing.assert_array_equal(shm.parts, pipe.parts)
        assert shm.replication_factor == pipe.replication_factor
        assert shm.edge_balance == pipe.edge_balance

"""Dense bitset over vertex ids ``0 .. n-1``.

The paper (Section 4.2) tracks the core set ``C`` and each secondary set
``S_i`` as dense bitsets: one bit per vertex, ``|V| * (k+1) / 8`` bytes in
total.  This implementation is backed by a ``numpy`` boolean array, which
keeps single-bit operations O(1) and gives vectorized bulk queries for
free (``count``, ``to_indices``, boolean masking).

A boolean array spends one byte per vertex rather than one bit; the
analytic memory model in :mod:`repro.core.memory_model` reports the
*paper's* bit-level footprint, which is what the C++ system would use.
:class:`PackedBitset` is the bit-level sibling — one genuine bit per
vertex — used where the 8x saving matters more than O(1) boolean-mask
access (the out-of-core metrics pass's ``k`` per-partition covers).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Bitset", "PackedBitset"]

#: set-bit count per byte value — one table lookup vectorizes popcounts
_POPCOUNT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.int64)


class Bitset:
    """Fixed-universe set of integers in ``[0, size)``.

    >>> s = Bitset(8)
    >>> s.add(3); s.add(5)
    >>> 3 in s, 4 in s
    (True, False)
    >>> s.count()
    2
    """

    __slots__ = ("_bits", "_size")

    def __init__(self, size: int, init: Iterable[int] | None = None) -> None:
        if size < 0:
            raise ConfigurationError(f"bitset size must be >= 0, got {size}")
        self._size = size
        self._bits = np.zeros(size, dtype=bool)
        if init is not None:
            for item in init:
                self.add(item)

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "Bitset":
        """Wrap an existing boolean mask (no copy)."""
        if mask.dtype != bool or mask.ndim != 1:
            raise ConfigurationError("mask must be a 1-D boolean array")
        out = cls(0)
        out._size = int(mask.shape[0])
        out._bits = mask
        return out

    @property
    def size(self) -> int:
        """Universe size (number of addressable ids)."""
        return self._size

    @property
    def mask(self) -> np.ndarray:
        """The underlying boolean array (shared, not a copy)."""
        return self._bits

    def add(self, item: int) -> None:
        """Insert ``item``; raises ``IndexError`` if out of universe."""
        if not 0 <= item < self._size:
            raise IndexError(f"id {item} outside universe [0, {self._size})")
        self._bits[item] = True

    def discard(self, item: int) -> None:
        """Remove ``item`` if present; no-op otherwise."""
        if 0 <= item < self._size:
            self._bits[item] = False

    def add_many(self, items: Iterable[int] | np.ndarray) -> None:
        """Insert every id in ``items`` (vectorized for arrays)."""
        idx = np.asarray(items, dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self._size:
            raise IndexError("id outside universe")
        self._bits[idx] = True

    def __contains__(self, item: int) -> bool:
        return 0 <= item < self._size and bool(self._bits[item])

    def count(self) -> int:
        """Number of set bits."""
        return int(self._bits.sum())

    def __len__(self) -> int:
        return self.count()

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_indices().tolist())

    def to_indices(self) -> np.ndarray:
        """Sorted array of all ids currently in the set."""
        return np.flatnonzero(self._bits)

    def clear(self) -> None:
        """Remove all elements."""
        self._bits[:] = False

    def nbytes_bitlevel(self) -> int:
        """Footprint the paper's C++ bitset would use (one bit per id)."""
        return (self._size + 7) // 8

    def to_packed(self) -> "PackedBitset":
        """Bit-packed copy of this set (1/8th the memory)."""
        out = PackedBitset(self._size)
        out.add_many(self.to_indices())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitset(size={self._size}, count={self.count()})"


class PackedBitset:
    """Fixed-universe set of integers in ``[0, size)`` — one *bit* per id.

    :class:`Bitset` trades memory for O(1) boolean-mask operations: one
    byte per id.  This class is the paper-faithful footprint — id ``i``
    lives in bit ``i & 7`` of word byte ``i >> 3`` (little bit order,
    ``np.unpackbits(..., bitorder="little")`` compatible) — so ``k``
    per-partition vertex covers cost ``k * ceil(n / 8)`` bytes, 8x less
    than boolean rows.  Bulk inserts and unions stay vectorized; the
    membership/count API mirrors :class:`Bitset`.

    >>> s = PackedBitset(12)
    >>> s.add_many([3, 8, 11])
    >>> 3 in s, 4 in s, s.count()
    (True, False, 3)
    """

    __slots__ = ("_words", "_size")

    def __init__(self, size: int, words: np.ndarray | None = None) -> None:
        if size < 0:
            raise ConfigurationError(f"bitset size must be >= 0, got {size}")
        self._size = size
        nbytes = (size + 7) // 8
        if words is None:
            self._words = np.zeros(nbytes, dtype=np.uint8)
        else:
            if words.dtype != np.uint8 or words.ndim != 1:
                raise ConfigurationError(
                    "words must be a 1-D uint8 array of packed bits"
                )
            if words.shape[0] != nbytes:
                raise ConfigurationError(
                    f"universe of {size} ids needs {nbytes} packed bytes, "
                    f"got {words.shape[0]}"
                )
            self._words = words

    @property
    def size(self) -> int:
        """Universe size (number of addressable ids)."""
        return self._size

    @property
    def words(self) -> np.ndarray:
        """The packed uint8 word array (shared, not a copy)."""
        return self._words

    @property
    def nbytes(self) -> int:
        """Actual footprint of the packed words (``ceil(size / 8)``)."""
        return self._words.nbytes

    def add(self, item: int) -> None:
        """Insert ``item``; raises ``IndexError`` if out of universe."""
        if not 0 <= item < self._size:
            raise IndexError(f"id {item} outside universe [0, {self._size})")
        self._words[item >> 3] |= np.uint8(1 << (item & 7))

    def add_many(self, items: Iterable[int] | np.ndarray) -> None:
        """Insert every id in ``items`` (vectorized, duplicates welcome)."""
        idx = np.asarray(items, dtype=np.int64)
        if idx.size == 0:
            return
        if idx.min() < 0 or idx.max() >= self._size:
            raise IndexError("id outside universe")
        # Group by bit position: within one group every scatter writes
        # the same OR-mask, so duplicate byte indices are harmless under
        # numpy's buffered fancy-index assignment (no slow ufunc.at).
        bytes_idx = idx >> 3
        bits = idx & 7
        for b in range(8):
            sel = bytes_idx[bits == b]
            if sel.size:
                self._words[sel] |= np.uint8(1 << b)

    def __contains__(self, item: int) -> bool:
        if not 0 <= item < self._size:
            return False
        return bool(self._words[item >> 3] & np.uint8(1 << (item & 7)))

    def count(self) -> int:
        """Number of set bits (table-lookup popcount)."""
        return int(_POPCOUNT[self._words].sum())

    def __len__(self) -> int:
        return self.count()

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_indices().tolist())

    def to_indices(self) -> np.ndarray:
        """Sorted array of all ids currently in the set."""
        mask = np.unpackbits(
            self._words, count=self._size, bitorder="little"
        ).astype(bool)
        return np.flatnonzero(mask)

    def to_bitset(self) -> Bitset:
        """Byte-per-id :class:`Bitset` copy (for boolean-mask consumers)."""
        mask = np.unpackbits(
            self._words, count=self._size, bitorder="little"
        ).astype(bool)
        return Bitset.from_mask(mask)

    def union_update(self, other: "PackedBitset | np.ndarray") -> None:
        """In-place union with another packed set over the same universe."""
        words = other._words if isinstance(other, PackedBitset) else other
        if words.shape != self._words.shape:
            raise ConfigurationError(
                f"universe mismatch: {words.shape[0]} packed bytes vs "
                f"{self._words.shape[0]}"
            )
        np.bitwise_or(self._words, words, out=self._words)

    def clear(self) -> None:
        """Remove all elements."""
        self._words[:] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedBitset(size={self._size}, count={self.count()})"

"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import Graph, write_binary_edgelist, write_text_edgelist


@pytest.fixture()
def small_graph_file(tmp_path):
    g = Graph.from_edges(
        [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3), (4, 0), (4, 1)],
        num_vertices=5,
    )
    path = tmp_path / "g.txt"
    write_text_edgelist(g, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition", "OK"])
        assert args.k == 32 and args.method == "HEP"
        assert args.tau is None  # resolved to 10.0 on the HEP paths

    def test_tau_rejected_for_non_hep(self, small_graph_file, capsys):
        for extra in ([], ["--out-of-core"]):
            rc = main(
                ["partition", str(small_graph_file), "--k", "2",
                 "--algo", "HDRF", "--tau", "2.0", *extra]
            )
            assert rc == 1
            assert "--tau applies only" in capsys.readouterr().err


class TestPartitionCommand:
    def test_partition_text_file(self, small_graph_file, capsys):
        rc = main(["partition", str(small_graph_file), "--k", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replication factor" in out

    def test_partition_binary_file(self, tmp_path, capsys):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 0), (0, 3)], num_vertices=4)
        path = tmp_path / "g.bin"
        write_binary_edgelist(g, path)
        rc = main(["partition", str(path), "--k", "2", "--method", "DBH"])
        assert rc == 0

    def test_partition_writes_output(self, small_graph_file, tmp_path, capsys):
        out_file = tmp_path / "parts.txt"
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--output", str(out_file)]
        )
        assert rc == 0
        parts = np.loadtxt(out_file, dtype=int)
        assert parts.shape == (8,)
        assert set(parts.tolist()) <= {0, 1}

    def test_partition_dataset_name(self, capsys):
        rc = main(["partition", "LJ", "--k", "4", "--method", "DBH"])
        assert rc == 0

    def test_unknown_graph_errors(self, capsys):
        rc = main(["partition", "nonexistent-thing", "--k", "2"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_compare(self, small_graph_file, capsys):
        rc = main(
            ["compare", str(small_graph_file), "--k", "2",
             "--partitioners", "DBH", "HDRF"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "DBH" in out and "HDRF" in out

    def test_select_tau(self, capsys):
        rc = main(["select-tau", "LJ", "--budget-kib", "100000", "--k", "4"])
        assert rc == 0
        assert "tau=" in capsys.readouterr().out

    def test_datasets(self, capsys):
        rc = main(["datasets"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("LJ", "OK", "TW", "WDC"):
            assert name in out

    def test_experiment_unknown(self, capsys):
        rc = main(["experiment", "figure99"])
        assert rc == 2

    def test_experiment_table3(self, capsys):
        rc = main(["experiment", "table3"])
        assert rc == 0
        assert "Table 3" in capsys.readouterr().out


class TestOutOfCore:
    def test_partition_out_of_core_file(self, small_graph_file, capsys):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--out-of-core",
             "--tau", "1.0", "--chunk-size", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "out-of-core" in out
        assert "replication factor" in out

    def test_partition_out_of_core_matches_in_memory(
        self, small_graph_file, tmp_path, capsys
    ):
        in_mem = tmp_path / "a.txt"
        ooc = tmp_path / "b.txt"
        assert main(
            ["partition", str(small_graph_file), "--k", "2", "--tau", "1.0",
             "--output", str(in_mem)]
        ) == 0
        assert main(
            ["partition", str(small_graph_file), "--k", "2", "--tau", "1.0",
             "--out-of-core", "--chunk-size", "2", "--output", str(ooc)]
        ) == 0
        assert np.array_equal(
            np.loadtxt(in_mem, dtype=int), np.loadtxt(ooc, dtype=int)
        )

    def test_partition_memory_budget(self, capsys):
        rc = main(
            ["partition", "LJ", "--k", "4", "--out-of-core",
             "--memory-budget", "1000000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "memory budget" in out

    def test_out_of_core_buffer_and_spill_dir(
        self, small_graph_file, tmp_path, capsys
    ):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--out-of-core",
             "--tau", "0.5", "--buffer-size", "4",
             "--spill-dir", str(tmp_path / "spill")]
        )
        assert rc == 0
        assert "buffer size" in capsys.readouterr().out

    def test_out_of_core_rejects_non_streaming_methods(
        self, small_graph_file, capsys
    ):
        """In-memory-only algorithms (NE, METIS, ...) still error out."""
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--out-of-core",
             "--method", "NE"]
        )
        assert rc == 1
        assert "streaming baseline" in capsys.readouterr().err


class TestOutOfCoreBaselines:
    """`partition --algo <name> --out-of-core` drives any baseline."""

    @pytest.mark.parametrize("algo", ["HDRF", "greedy", "DBH", "Grid"])
    def test_each_baseline_runs(self, small_graph_file, capsys, algo):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--out-of-core",
             "--algo", algo, "--chunk-size", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "out-of-core" in out and "replication factor" in out

    def test_restreaming_with_passes_and_prefetch(
        self, small_graph_file, capsys
    ):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--out-of-core",
             "--algo", "restreaming", "--passes", "2", "--prefetch", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "stream passes      : 2" in out
        assert "prefetch depth" in out

    def test_baseline_matches_in_memory(self, small_graph_file, tmp_path):
        in_mem = tmp_path / "a.txt"
        ooc = tmp_path / "b.txt"
        assert main(
            ["partition", str(small_graph_file), "--k", "2",
             "--method", "HDRF", "--output", str(in_mem)]
        ) == 0
        assert main(
            ["partition", str(small_graph_file), "--k", "2", "--out-of-core",
             "--algo", "HDRF", "--chunk-size", "2", "--output", str(ooc)]
        ) == 0
        assert np.array_equal(
            np.loadtxt(in_mem, dtype=int), np.loadtxt(ooc, dtype=int)
        )

    def test_budget_rejected_for_baselines(self, small_graph_file, capsys):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--out-of-core",
             "--algo", "DBH", "--memory-budget", "100000"]
        )
        assert rc == 1
        assert "tau" in capsys.readouterr().err

    def test_spill_flags_rejected_for_baselines(self, small_graph_file, capsys):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--out-of-core",
             "--algo", "HDRF", "--spill-compression", "zlib"]
        )
        assert rc == 1
        assert "spill" in capsys.readouterr().err

    def test_hep_spill_compression_and_prefetch(self, small_graph_file, capsys):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--out-of-core",
             "--tau", "0.5", "--spill-compression", "zlib", "--prefetch", "2"]
        )
        assert rc == 0
        assert "zlib" in capsys.readouterr().out

    def test_prefetch_requires_out_of_core(self, small_graph_file, capsys):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--prefetch", "2"]
        )
        assert rc == 1
        assert "--out-of-core" in capsys.readouterr().err

    def test_negative_prefetch_rejected(self, small_graph_file, capsys):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--out-of-core",
             "--prefetch", "-2"]
        )
        assert rc == 1
        assert ">= 0" in capsys.readouterr().err


class TestExtsortCommand:
    def test_extsort_then_partition(self, tmp_path, capsys):
        src = tmp_path / "wi.bin"
        out = tmp_path / "wi-degree.bin"
        assert main(["datasets", "--export", "LJ", "--format", "binary",
                     "--output", str(src)]) == 0
        rc = main(["extsort", str(src), str(out), "--order", "degree",
                   "--chunk-size", "1000"])
        assert rc == 0
        assert "sort runs" in capsys.readouterr().out
        assert out.exists() and out.stat().st_size == src.stat().st_size
        assert main(["partition", str(out), "--k", "4", "--out-of-core",
                     "--algo", "HDRF"]) == 0

    def test_extsort_unknown_source(self, capsys):
        rc = main(["extsort", "missing-thing", "out.bin"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_extsort_in_place_rejected(self, tmp_path, capsys):
        src = tmp_path / "g.bin"
        assert main(["datasets", "--export", "LJ", "--format", "binary",
                     "--output", str(src)]) == 0
        size = src.stat().st_size
        rc = main(["extsort", str(src), str(src), "--order", "natural"])
        assert rc == 1
        assert src.stat().st_size == size


class TestShardedCli:
    """datasets --format sharded, extsort --shards, partition --mmap."""

    def test_sharded_export_then_partition(self, tmp_path, capsys):
        manifest = tmp_path / "lj.manifest.json"
        rc = main(["datasets", "--export", "LJ", "--format", "sharded",
                   "--shards", "3", "--output", str(manifest)])
        assert rc == 0
        assert "3 shards" in capsys.readouterr().out
        assert main(["partition", str(manifest), "--k", "4",
                     "--out-of-core", "--algo", "HDRF"]) == 0
        # The manifest also feeds the in-memory path.
        assert main(["partition", str(manifest), "--k", "4",
                     "--method", "DBH"]) == 0

    def test_sharded_export_compressed(self, tmp_path, capsys):
        manifest = tmp_path / "lj.manifest.json"
        rc = main(["datasets", "--export", "LJ", "--format", "sharded",
                   "--shards", "2", "--compress", "zlib",
                   "--output", str(manifest)])
        assert rc == 0
        assert "zlib" in capsys.readouterr().out
        assert main(["partition", str(manifest), "--k", "4",
                     "--out-of-core", "--tau", "1.0"]) == 0

    def test_compress_requires_sharded_format(self, capsys):
        rc = main(["datasets", "--export", "LJ", "--format", "binary",
                   "--compress", "zlib"])
        assert rc == 1
        assert "sharded" in capsys.readouterr().err

    def test_extsort_sharded_output(self, tmp_path, capsys):
        src = tmp_path / "lj.bin"
        assert main(["datasets", "--export", "LJ", "--format", "binary",
                     "--output", str(src)]) == 0
        manifest = tmp_path / "deg.manifest.json"
        rc = main(["extsort", str(src), str(manifest), "--order", "degree",
                   "--shards", "4", "--compress", "zlib"])
        assert rc == 0
        assert "shards" in capsys.readouterr().out
        assert main(["partition", str(manifest), "--k", "4",
                     "--out-of-core", "--algo", "Greedy"]) == 0

    def test_extsort_compress_requires_shards(self, tmp_path, capsys):
        src = tmp_path / "lj.bin"
        assert main(["datasets", "--export", "LJ", "--format", "binary",
                     "--output", str(src)]) == 0
        rc = main(["extsort", str(src), str(tmp_path / "x.bin"),
                   "--compress", "zlib"])
        assert rc == 1
        assert "--shards" in capsys.readouterr().err

    def test_mmap_partition(self, tmp_path, capsys):
        src = tmp_path / "lj.bin"
        assert main(["datasets", "--export", "LJ", "--format", "binary",
                     "--output", str(src)]) == 0
        rc = main(["partition", str(src), "--k", "4", "--out-of-core",
                   "--algo", "HDRF", "--mmap"])
        assert rc == 0
        assert "replication factor" in capsys.readouterr().out

    def test_mmap_requires_out_of_core(self, small_graph_file, capsys):
        rc = main(["partition", str(small_graph_file), "--k", "2", "--mmap"])
        assert rc == 1
        assert "--out-of-core" in capsys.readouterr().err

    def test_text_named_edges_errors(self, tmp_path, capsys):
        """Regression: a text edge list named *.edges used to be parsed
        as binary and silently partition garbage."""
        path = tmp_path / "snap.edges"
        path.write_text("0 1\n1 2\n2 0\n")
        rc = main(["partition", str(path), "--k", "2", "--out-of-core",
                   "--algo", "HDRF"])
        assert rc == 1
        assert "text" in capsys.readouterr().err


class TestInMemoryRestreaming:
    def test_passes_honored_in_memory(self, small_graph_file, capsys):
        """Regression: --passes must reach the in-memory partitioner."""
        rc = main(
            ["partition", str(small_graph_file), "--k", "2",
             "--method", "Restreaming", "--passes", "5"]
        )
        assert rc == 0
        assert "ReHDRF-5" in capsys.readouterr().out

    def test_passes_rejected_for_other_methods(self, small_graph_file, capsys):
        """Regression: --passes must not be silently dropped elsewhere."""
        for extra in ([], ["--out-of-core"]):
            rc = main(
                ["partition", str(small_graph_file), "--k", "2",
                 "--algo", "HDRF", "--passes", "5", *extra]
            )
            assert rc == 1
            assert "Restreaming" in capsys.readouterr().err


class TestDatasetsExport:
    def test_export_binary_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "lj.bin"
        rc = main(["datasets", "--export", "LJ", "--format", "binary",
                   "--output", str(out)])
        assert rc == 0
        from repro.graph import datasets, read_binary_edgelist

        expected = datasets.load("LJ")
        got = read_binary_edgelist(out)
        assert np.array_equal(got.edges, expected.edges)

    def test_export_text_feeds_out_of_core(self, tmp_path, capsys):
        out = tmp_path / "lj.txt"
        assert main(["datasets", "--export", "LJ", "--format", "text",
                     "--output", str(out)]) == 0
        rc = main(["partition", str(out), "--k", "4", "--out-of-core",
                   "--tau", "1.0"])
        assert rc == 0

    def test_export_unknown_dataset_errors(self, capsys):
        rc = main(["datasets", "--export", "NOPE"])
        assert rc == 1

    def test_memory_budget_requires_out_of_core(self, small_graph_file, capsys):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2",
             "--memory-budget", "1000000"]
        )
        assert rc == 1
        assert "--out-of-core" in capsys.readouterr().err

    def test_shards_dir_rejected_out_of_core(
        self, small_graph_file, tmp_path, capsys
    ):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--out-of-core",
             "--shards-dir", str(tmp_path / "shards")]
        )
        assert rc == 1
        assert "shards" in capsys.readouterr().err

    def test_in_memory_hep_accepts_stream_params(
        self, small_graph_file, tmp_path, capsys
    ):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2", "--tau", "0.5",
             "--buffer-size", "4", "--spill-dir", str(tmp_path / "spill")]
        )
        assert rc == 0

    def test_stream_params_rejected_for_non_hep(self, small_graph_file, capsys):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2",
             "--method", "DBH", "--buffer-size", "4"]
        )
        assert rc == 1
        assert "HEP" in capsys.readouterr().err


@pytest.mark.slow
class TestMultiWorkerCli:
    @pytest.fixture()
    def sharded_manifest(self, tmp_path):
        from repro.graph.generators import chung_lu
        from repro.stream import write_sharded_edges

        g = chung_lu(200, mean_degree=6, exponent=2.2, seed=3, name="cli")
        return write_sharded_edges(
            g, tmp_path / "cli.manifest.json", num_shards=4
        )

    @pytest.fixture()
    def binary_file(self, tmp_path):
        from repro.graph.generators import chung_lu

        g = chung_lu(200, mean_degree=6, exponent=2.2, seed=3, name="cli")
        path = tmp_path / "cli.bin"
        write_binary_edgelist(g, path)
        return path

    def test_workers_hdrf_on_manifest(self, sharded_manifest, capsys):
        rc = main(
            ["partition", str(sharded_manifest.path), "--k", "4",
             "--out-of-core", "--algo", "HDRF", "--workers", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "HDRF-mw2" in out
        assert "2 worker processes" in out
        assert "bsp schedule" in out

    def test_workers_hep_on_binary(self, binary_file, capsys):
        rc = main(
            ["partition", str(binary_file), "--k", "4", "--out-of-core",
             "--workers", "2", "--batch", "16", "--tau", "1.0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "HEP-1" in out and "2 worker processes" in out

    def test_workers_writes_assignment(self, sharded_manifest, tmp_path, capsys):
        out_path = tmp_path / "parts.txt"
        rc = main(
            ["partition", str(sharded_manifest.path), "--k", "4",
             "--out-of-core", "--algo", "HDRF", "--workers", "2",
             "--output", str(out_path)]
        )
        assert rc == 0
        parts = np.loadtxt(out_path, dtype=np.int64)
        assert parts.shape[0] == sharded_manifest.num_edges
        assert parts.min() >= 0 and parts.max() < 4

    def test_workers_requires_out_of_core(self, binary_file, capsys):
        rc = main(["partition", str(binary_file), "--k", "4",
                   "--workers", "2"])
        assert rc == 1
        assert "--workers requires --out-of-core" in capsys.readouterr().err

    def test_batch_requires_workers(self, binary_file, capsys):
        rc = main(["partition", str(binary_file), "--k", "4",
                   "--out-of-core", "--batch", "8"])
        assert rc == 1
        assert "--batch" in capsys.readouterr().err

    def test_workers_rejects_other_algos(self, binary_file, capsys):
        rc = main(["partition", str(binary_file), "--k", "4",
                   "--out-of-core", "--algo", "DBH", "--workers", "2"])
        assert rc == 1
        assert "HEP or HDRF" in capsys.readouterr().err

    def test_workers_hdrf_rejects_hep_only_flags(self, binary_file, capsys):
        rc = main(["partition", str(binary_file), "--k", "4",
                   "--out-of-core", "--algo", "HDRF", "--workers", "2",
                   "--memory-budget", "100000"])
        assert rc == 1
        assert "tunes HEP's tau" in capsys.readouterr().err

    def test_workers_matches_no_workers_oracle(self, sharded_manifest, tmp_path, capsys):
        """CLI multi-worker output equals the in-process BSP schedule."""
        from repro.parallel import bsp_hdrf_stream
        from repro.partition.base import capacity_bound
        from repro.partition.state import StreamingState
        from repro.stream import ShardedEdgeSource, plan_worker_segments
        from repro.stream.scan import scan_source

        out_path = tmp_path / "parts.txt"
        rc = main(
            ["partition", str(sharded_manifest.path), "--k", "4",
             "--out-of-core", "--algo", "HDRF", "--workers", "4",
             "--batch", "4", "--output", str(out_path)]
        )
        assert rc == 0
        got = np.loadtxt(out_path, dtype=np.int64)
        src = ShardedEdgeSource(sharded_manifest)
        stats = scan_source(src)
        edges = np.vstack([c.pairs for c in src])
        _, streams, _, _ = plan_worker_segments(sharded_manifest.path, 4)
        state = StreamingState(
            stats.num_vertices, 4,
            capacity_bound(stats.num_edges, 4, 1.0),
            exact_degrees=stats.degrees,
        )
        oracle = np.full(stats.num_edges, -1, dtype=np.int32)
        bsp_hdrf_stream(
            state, edges, np.arange(stats.num_edges), oracle, 4,
            batch=4, streams=streams,
        )
        assert np.array_equal(got, oracle)


class TestScanCommand:
    @pytest.fixture()
    def binary_graph(self, tmp_path):
        g = Graph.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3), (4, 0), (4, 1)],
            num_vertices=6,
        )
        path = tmp_path / "g.bin"
        write_binary_edgelist(g, path)
        return g, path

    def test_scan_stats_only(self, binary_graph, capsys):
        g, path = binary_graph
        rc = main(["scan", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"m={g.num_edges:,}" in out
        assert "sequential" in out

    def test_scan_with_parts(self, binary_graph, tmp_path, capsys):
        g, path = binary_graph
        parts_file = tmp_path / "parts.txt"
        rc = main(
            ["partition", str(path), "--k", "2", "--algo", "HDRF",
             "--out-of-core", "--output", str(parts_file)]
        )
        assert rc == 0
        partition_out = capsys.readouterr().out
        rc = main(["scan", str(path), "--parts", str(parts_file), "--k", "2"])
        assert rc == 0
        scan_out = capsys.readouterr().out
        # The scan's quality lines must reproduce the partition report's.
        for line in partition_out.splitlines():
            if "replication factor" in line or "edge balance" in line:
                assert line in scan_out
        assert "unassigned edges   : 0" in scan_out

    def test_scan_parallel_workers(self, binary_graph, tmp_path, capsys):
        g, path = binary_graph
        parts_file = tmp_path / "parts.txt"
        np.savetxt(parts_file, np.zeros(g.num_edges, dtype=np.int64), fmt="%d")
        rc = main(
            ["scan", str(path), "--parts", str(parts_file),
             "--metrics-workers", "2", "--memory-budget", "64"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 worker processes" in out
        # k defaults to max id + 1 = 1; every covered vertex once.
        assert "replication factor : 1.0000" in out

    def test_scan_rejects_negative_workers(self, binary_graph, capsys):
        _, path = binary_graph
        rc = main(["scan", str(path), "--metrics-workers", "-1"])
        assert rc == 1
        assert "--metrics-workers" in capsys.readouterr().err

    def test_metrics_workers_requires_out_of_core(
        self, small_graph_file, capsys
    ):
        rc = main(
            ["partition", str(small_graph_file), "--k", "2",
             "--metrics-workers", "2"]
        )
        assert rc == 1
        assert "--metrics-workers requires" in capsys.readouterr().err

    def test_partition_metrics_workers_matches_sequential(
        self, tmp_path, capsys
    ):
        g = Graph.from_edges(
            [(i, (i + j) % 19) for i in range(19) for j in (1, 2, 3)],
            num_vertices=19,
        )
        path = tmp_path / "g.bin"
        write_binary_edgelist(g, path)
        rc = main(
            ["partition", str(path), "--k", "2", "--algo", "HDRF",
             "--out-of-core", "--metrics-workers", "2"]
        )
        assert rc == 0
        fanned = capsys.readouterr().out
        rc = main(
            ["partition", str(path), "--k", "2", "--algo", "HDRF",
             "--out-of-core"]
        )
        assert rc == 0
        sequential = capsys.readouterr().out

        def quality(text):
            return [
                line for line in text.splitlines()
                if "replication factor" in line or "edge balance" in line
            ]

        assert quality(fanned) == quality(sequential)

    def test_extsort_scan_workers(self, tmp_path, capsys):
        g = Graph.from_edges(
            [(i, (i + 1) % 12) for i in range(12)], num_vertices=12
        )
        path = tmp_path / "g.bin"
        write_binary_edgelist(g, path)
        rc = main(
            ["extsort", str(path), str(tmp_path / "sorted.bin"),
             "--order", "degree", "--scan-workers", "2"]
        )
        assert rc == 0
        assert (tmp_path / "sorted.bin").stat().st_size == path.stat().st_size


class TestTraceFlags:
    def test_partition_trace_then_summarize(
        self, small_graph_file, tmp_path, capsys
    ):
        trace = tmp_path / "run.trace.jsonl"
        parts_a = tmp_path / "a.txt"
        parts_b = tmp_path / "b.txt"
        rc = main(["partition", str(small_graph_file), "--k", "2",
                   "--out-of-core", "--output", str(parts_a),
                   "--trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        assert trace.exists()

        rc = main(["trace", "summarize", str(trace)])
        assert rc == 0
        summary = capsys.readouterr().out
        assert "phase attribution" in summary
        assert "partition" in summary

        # Tracing never changes the assignment.
        rc = main(["partition", str(small_graph_file), "--k", "2",
                   "--out-of-core", "--output", str(parts_b)])
        assert rc == 0
        capsys.readouterr()
        np.testing.assert_array_equal(
            np.loadtxt(parts_a, dtype=np.int64),
            np.loadtxt(parts_b, dtype=np.int64),
        )

    def test_scan_trace_with_memory_probe(
        self, small_graph_file, tmp_path, capsys
    ):
        trace = tmp_path / "scan.trace.jsonl"
        rc = main(["scan", str(small_graph_file),
                   "--trace", str(trace), "--trace-memory", "rss"])
        assert rc == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        assert "mem_delta" in capsys.readouterr().out

    def test_trace_memory_requires_trace(self, small_graph_file, capsys):
        rc = main(["scan", str(small_graph_file), "--trace-memory", "rss"])
        assert rc == 1
        assert "--trace-memory requires --trace" in capsys.readouterr().err

    def test_summarize_rejects_non_trace_file(self, small_graph_file, capsys):
        rc = main(["trace", "summarize", str(small_graph_file)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

"""Table 6: paging vs. the tau knob (OK graph, k=32).

Unpruned NE++ runs under shrinking memory limits on the paging
simulator; faults and modeled run-time explode once the limit is below
the working set.  HEP at ``tau = 1`` fits in comparable memory with no
hard faults at all — the paper's argument for hybrid partitioning over
OS paging (at the cost of a worse replication factor, also shown).
"""

from __future__ import annotations

from repro.core import HepPartitioner, hep_memory_bytes
from repro.experiments.common import ExperimentResult, load_dataset
from repro.experiments.paper_reference import SHAPES, TABLE6_PAGING
from repro.memsim import PAGE_BYTES, run_paged_ne_plus_plus
from repro.metrics import replication_factor

__all__ = ["run"]

#: fractions of the measured working set, mirroring 1000..400 MB of ~1 GiB
_LIMIT_FRACTIONS = (1.1, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4)


def run(graph_name: str = "OK", k: int = 32) -> ExperimentResult:
    graph = load_dataset(graph_name)
    # Establish the working set with a generous limit.
    generous = run_paged_ne_plus_plus(graph, k, 1 << 30)
    working_bytes = generous.working_set_pages * PAGE_BYTES

    rows: list[dict[str, object]] = []
    for fraction in _LIMIT_FRACTIONS:
        limit = max(int(working_bytes * fraction), PAGE_BYTES)
        result = run_paged_ne_plus_plus(graph, k, limit)
        rows.append(
            {
                "mem_limit_%ws": int(fraction * 100),
                "limit_KiB": limit // 1024,
                "hard_faults": result.page_faults,
                "runtime_s": round(result.modeled_runtime_seconds, 3),
            }
        )

    # The alternative: HEP at tau=1 in comparable memory, zero faults.
    hep = HepPartitioner(tau=1.0)
    assignment = hep.partition(graph, k)
    hep_bytes = hep_memory_bytes(graph, 1.0, k)
    rows.append(
        {
            "mem_limit_%ws": f"HEP-1 ({hep_bytes * 100 // max(working_bytes,1)}% ws)",
            "limit_KiB": hep_bytes // 1024,
            "hard_faults": 0,
            "runtime_s": "-",
        }
    )

    result = ExperimentResult(
        experiment_id="table6",
        title=f"Paged NE++ vs HEP-1 on {graph_name} (k={k})",
        rows=rows,
        paper_shape=SHAPES["table6"],
    )
    faults = [int(r["hard_faults"]) for r in rows[:-1]]
    result.notes.append(
        f"faults increase monotonically as the limit shrinks: "
        f"{faults == sorted(faults)}"
    )
    result.notes.append(
        "paper Table 6 (1000..400 MB): "
        + ", ".join(f"{mb}MB->{rt}s/{f//1000}K faults"
                    for mb, (rt, f) in TABLE6_PAGING.items())
    )
    result.notes.append(
        f"paging keeps the better RF (paper: 2.51 vs 4.52): paged NE++ RF="
        f"{replication_factor(run_unpruned_assignment(graph, k)):.2f} vs "
        f"HEP-1 RF={replication_factor(assignment):.2f}"
    )
    return result


def run_unpruned_assignment(graph, k):
    from repro.core import NePlusPlusPartitioner

    return NePlusPlusPartitioner().partition(graph, k)

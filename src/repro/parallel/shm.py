"""Shared-memory BSP state: numpy views over one ``/dev/shm`` segment.

PR 4's multi-worker protocol shipped *state* over pipes: every
superstep each worker pickled/encoded its batch, the coordinator
re-encoded the merged delta, and every worker re-applied it to a
private snapshot copy — ``O(workers² · batch)`` bytes framed and
``O(workers · batch)`` redundant apply work per superstep.  The
profiling subsystem (``bench_profile.py``) attributes most of the
multi-worker gap to exactly that spawn/pickle/pipe tax.

This module replaces the data plane with one
:mod:`multiprocessing.shared_memory` segment that workers and the
coordinator map as plain numpy views; pipes are demoted to tiny control
frames (a one-byte tag plus the spill frame header).  Two ideas make it
bit-identical to the pipe protocol and the in-process
:func:`~repro.parallel.bsp_streaming.bsp_hdrf_stream`:

* **Double-buffered snapshot/commit** (:class:`SharedState`): the
  replica cover and per-partition loads exist twice in the segment.
  Workers only ever read the *published* buffer — by the BSP invariant
  it equals the live state at the start of the superstep they are
  scoring.  The coordinator merges batches into its private live state
  exactly as before, then :meth:`SharedState.commit` folds the last two
  superstep deltas into the *staging* buffer (each buffer is two
  supersteps stale, so replaying both pending deltas catches it up in
  ``O(batch)``) and flips the published index.  The flip
  happens-before the ``COMMIT`` control frame that releases the
  workers, so no worker can observe a torn snapshot.
* **Per-worker scratch lanes**: each worker owns a fixed slice of the
  segment where it writes its batch (edge ids, endpoints, and either
  chosen partitions or the full score matrix near capacity).  The
  control frame carries only the record count; the coordinator reads
  the lane directly — nothing is pickled on the hot path.

Segment lifetime: the creator (coordinator) owns the name and must
:meth:`~SharedState.unlink` it (the drivers do so in ``finally``
blocks); workers attach by name and detach with
:meth:`~SharedState.close`.  Neither side ever talks to
``multiprocessing.resource_tracker``: the tracker assumes every mapped
segment is owned and unlinks it on process exit (tearing live segments
out from under the coordinator when a worker exits first), and its
per-name cache is a *set*, so the registrations of two workers
attaching concurrently collapse into one entry and the second
deregistration crashes the tracker loop with ``KeyError`` noise.
Python 3.13 grew ``track=False`` for exactly this; on 3.10–3.12 the
register/unregister calls are suppressed instead
(:func:`_tracker_paused`).  Leak safety is owned by the explicit
``finally`` unlinks plus the test-session and CI ``psm_*`` gates.

:class:`SharedArray` is the one-array little sibling used to ship the
read-only assignment to metrics workers without pickling it per job.
"""

from __future__ import annotations

import contextlib
import os
import threading
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel.kernel import apply_delta

__all__ = ["SharedArray", "SharedState"]

_TRIPLE_FIELDS = 3  # eids, us, vs — one scratch column each

_TRACKER_LOCK = threading.Lock()


@contextlib.contextmanager
def _tracker_paused():
    """Suppress ``resource_tracker`` traffic for one shm call.

    ``SharedMemory`` registers the name on *both* create and attach and
    unregisters it on unlink; the module docstring explains why any of
    those messages is wrong for a segment whose lifetime the drivers
    manage explicitly.  ``shared_memory.py`` resolves both functions as
    module attributes at call time, so swapping them for no-ops around
    the call is exactly Python 3.13's ``track=False`` — the lock only
    serializes this process's own threads.
    """
    with _TRACKER_LOCK:
        saved = (resource_tracker.register, resource_tracker.unregister)
        resource_tracker.register = lambda name, rtype: None
        resource_tracker.unregister = lambda name, rtype: None
        try:
            yield
        finally:
            resource_tracker.register = saved[0]
            resource_tracker.unregister = saved[1]


def _create_untracked(size: int) -> shared_memory.SharedMemory:
    """Create a fresh segment whose lifetime *we* manage, not the tracker."""
    with _tracker_paused():
        return shared_memory.SharedMemory(create=True, size=size)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to segment ``name`` without this process tracking it."""
    with _tracker_paused():
        return shared_memory.SharedMemory(name=name)


def _unlink_quietly(shm: shared_memory.SharedMemory) -> None:
    """Remove the segment name, idempotently and without tracker noise."""
    with _tracker_paused():
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _close_quietly(shm: shared_memory.SharedMemory) -> None:
    """Close a segment, tolerating numpy views that still pin the map.

    ``mmap.close`` raises :class:`BufferError` while any exported view
    is alive (on the failure path the propagating traceback can pin
    views in cycle garbage).  In that case the mapping is handed over
    to the views — they keep the ``mmap`` object alive and it unmaps
    when the last one dies — and the descriptor is released here, so
    ``SharedMemory.__del__`` never retries the close and re-raises
    during interpreter-shutdown GC (where collection order between the
    segment and its views is arbitrary).  The *name* (what leak gates
    watch) is governed by ``unlink``, not by this call.
    """
    try:
        shm.close()
    except BufferError:
        shm._mmap = None
        if getattr(shm, "_fd", -1) >= 0:
            os.close(shm._fd)
            shm._fd = -1


class SharedArray:
    """One numpy array in a shared-memory segment (create or attach).

    The creator calls :meth:`create` with the array to publish and owns
    the segment name (``close`` + ``unlink``); readers call
    :meth:`attach` with the shape/dtype they expect and get a view via
    :attr:`array` (``close`` only).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: tuple[int, ...],
        dtype: np.dtype,
        owner: bool,
    ) -> None:
        """Wrap an already-open segment; use :meth:`create`/:meth:`attach`."""
        self._shm = shm
        self._owner = owner
        self._array: np.ndarray | None = np.ndarray(
            shape, dtype=dtype, buffer=shm.buf
        )

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        """Publish a copy of ``array`` in a fresh shared segment.

        If anything — including an interrupt — lands between segment
        creation and the return, the segment is closed and unlinked
        before the exception propagates: a name the caller never saw
        is a name the caller can never clean up.
        """
        array = np.ascontiguousarray(array)
        shm = _create_untracked(max(int(array.nbytes), 1))
        try:
            shared = cls(shm, array.shape, array.dtype, owner=True)
            shared.array[...] = array
        except BaseException:
            _close_quietly(shm)
            _unlink_quietly(shm)
            raise
        return shared

    @classmethod
    def attach(
        cls, name: str, shape: tuple[int, ...], dtype
    ) -> "SharedArray":
        """Map an existing segment as a ``shape``/``dtype`` view."""
        shm = _attach_untracked(name)
        expected = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        if shm.size < expected:
            _close_quietly(shm)
            raise ConfigurationError(
                f"shared segment {name} holds {shm.size} bytes; "
                f"{expected} expected for shape {shape}"
            )
        return cls(shm, tuple(shape), np.dtype(dtype), owner=False)

    @property
    def name(self) -> str:
        """Segment name readers pass to :meth:`attach`."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Size of the underlying segment in bytes."""
        return self._shm.size

    @property
    def array(self) -> np.ndarray:
        """The shared view (invalid after :meth:`close`)."""
        if self._array is None:
            raise ConfigurationError("shared array used after close()")
        return self._array

    def close(self) -> None:
        """Drop the view and unmap the segment (both sides)."""
        self._array = None
        _close_quietly(self._shm)

    def unlink(self) -> None:
        """Remove the segment name (creator only; idempotent)."""
        if self._owner:
            _unlink_quietly(self._shm)


class SharedState:
    """Double-buffered BSP streaming state in one shared segment.

    Layout (8-byte-aligned int64/float64 regions first, the bool
    replica covers last)::

        degrees   n int64                     read-only after create
        loads     2 × k int64                 double-buffered
        scratch   workers × lane bytes        per-worker batch lanes
        replicas  2 × (k × n) bool            double-buffered

    One *lane* holds a full batch: ``3 × batch`` int64 (eids, us, vs)
    followed by the payload region — ``batch`` int64 partitions on the
    fast path or a ``batch × k`` float64 score matrix near capacity
    (the float64 region bounds both).

    Workers read snapshots (:meth:`snapshot`) and write lanes
    (:meth:`write_batch`); the coordinator reads lanes
    (:meth:`read_batch`) and advances the published snapshot
    (:meth:`commit`).  The commit/flip ordering contract is the module
    docstring's.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        num_vertices: int,
        k: int,
        workers: int,
        batch: int,
        owner: bool,
    ) -> None:
        """Wrap an open segment; use :meth:`create`/:meth:`attach`."""
        self._shm = shm
        self._owner = owner
        self.num_vertices = int(num_vertices)
        self.k = int(k)
        self.workers = int(workers)
        self.batch = int(batch)
        self.published = 0
        self._pending: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

        n, k_, w, b = self.num_vertices, self.k, self.workers, self.batch
        buf = shm.buf
        off = 0

        def view(count: int, dtype) -> np.ndarray:
            nonlocal off
            dtype = np.dtype(dtype)
            array = np.frombuffer(buf, dtype=dtype, count=count, offset=off)
            off += count * dtype.itemsize
            return array

        self._degrees = view(n, np.int64)
        self._loads = [view(k_, np.int64) for _ in range(2)]
        self._lane_triples: list[np.ndarray] = []
        self._lane_parts: list[np.ndarray] = []
        self._lane_scores: list[np.ndarray] = []
        for _ in range(w):
            self._lane_triples.append(view(_TRIPLE_FIELDS * b, np.int64))
            payload = view(b * k_, np.int64)
            self._lane_parts.append(payload[:b])
            self._lane_scores.append(
                payload.view(np.float64).reshape(b, k_)
            )
        self._replicas = [
            view(k_ * n, np.bool_).reshape(k_, n) for _ in range(2)
        ]
        self._total_bytes = off

    # -- construction --------------------------------------------------------

    @staticmethod
    def segment_bytes(num_vertices: int, k: int, workers: int, batch: int
                      ) -> int:
        """Bytes the layout above needs for these dimensions."""
        lane = (_TRIPLE_FIELDS * batch + batch * k) * 8
        return num_vertices * 8 + 2 * k * 8 + workers * lane \
            + 2 * k * num_vertices

    @classmethod
    def create(
        cls,
        num_vertices: int,
        k: int,
        workers: int,
        batch: int,
        degrees: np.ndarray,
        replicas: np.ndarray,
        loads: np.ndarray,
    ) -> "SharedState":
        """Allocate a segment seeded with the superstep-0 snapshot.

        Both buffers start equal to the initial state (they are zero
        and one commits behind a published buffer that has seen zero
        commits), so the first two :meth:`commit` calls find correctly
        aged staging buffers.
        """
        if workers < 1 or batch < 1:
            raise ConfigurationError(
                f"shared state needs workers/batch >= 1, got "
                f"{workers}/{batch}"
            )
        size = cls.segment_bytes(num_vertices, k, workers, batch)
        shm = _create_untracked(max(size, 1))
        try:
            state = cls(shm, num_vertices, k, workers, batch, owner=True)
            state._degrees[...] = degrees
            for index in range(2):
                state._loads[index][...] = loads
                state._replicas[index][...] = replicas
        except BaseException:
            # An interrupt mid-seed must not orphan a segment whose
            # name the caller never learned (see the leak gates).
            _close_quietly(shm)
            _unlink_quietly(shm)
            raise
        return state

    @classmethod
    def attach(
        cls, name: str, num_vertices: int, k: int, workers: int, batch: int
    ) -> "SharedState":
        """Map the coordinator's segment from a worker process."""
        shm = _attach_untracked(name)
        expected = cls.segment_bytes(num_vertices, k, workers, batch)
        if shm.size < expected:
            _close_quietly(shm)
            raise ConfigurationError(
                f"shared state segment {name} holds {shm.size} bytes; "
                f"{expected} expected for n={num_vertices} k={k} "
                f"workers={workers} batch={batch}"
            )
        return cls(shm, num_vertices, k, workers, batch, owner=False)

    # -- views ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """Segment name workers pass to :meth:`attach`."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Size of the underlying segment in bytes."""
        return self._total_bytes

    @property
    def degrees(self) -> np.ndarray:
        """The exact-degree array (written once by the creator)."""
        return self._degrees

    def snapshot(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(replicas, loads)`` views of buffer ``index`` (0 or 1)."""
        return self._replicas[index], self._loads[index]

    # -- worker side ---------------------------------------------------------

    def write_batch(
        self,
        worker_id: int,
        eids: np.ndarray,
        us: np.ndarray,
        vs: np.ndarray,
        ps: np.ndarray | None = None,
        scores: np.ndarray | None = None,
    ) -> None:
        """Write one batch into worker ``worker_id``'s scratch lane.

        Exactly one of ``ps`` (fast path: chosen partitions) or
        ``scores`` (slow path: the full score matrix) must be given.
        Only the control frame's record count tells the coordinator how
        much of the lane is live.
        """
        count = eids.shape[0]
        b = self.batch
        triples = self._lane_triples[worker_id]
        triples[:count] = eids
        triples[b:b + count] = us
        triples[2 * b:2 * b + count] = vs
        if ps is not None:
            self._lane_parts[worker_id][:count] = ps
        else:
            self._lane_scores[worker_id][:count] = scores

    # -- coordinator side ----------------------------------------------------

    def read_batch(
        self, worker_id: int, count: int, slow: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Views of worker ``worker_id``'s lane: ``(eids, us, vs, extra)``.

        ``extra`` is the chosen-partition vector (``slow=False``) or the
        ``count × k`` score matrix (``slow=True``).  Views stay valid
        until the worker's *next* superstep — i.e. until the commit
        frame is sent — so merge before committing.
        """
        b = self.batch
        triples = self._lane_triples[worker_id]
        eids = triples[:count]
        us = triples[b:b + count]
        vs = triples[2 * b:2 * b + count]
        if slow:
            return eids, us, vs, self._lane_scores[worker_id][:count]
        return eids, us, vs, self._lane_parts[worker_id][:count]

    def commit(
        self, us: np.ndarray, vs: np.ndarray, ps: np.ndarray
    ) -> int:
        """Fold one superstep's merged delta in; flip; return the new index.

        The staging buffer last published two supersteps ago, so it is
        exactly the previous pending delta plus this one behind the
        live state — replay both and it is current.  ``us``/``vs``/
        ``ps`` are kept by reference until the superstep after next:
        pass arrays that no worker lane backs (the drivers pass
        freshly concatenated copies).
        """
        staging = 1 - self.published
        replicas, loads = self.snapshot(staging)
        if self._pending is not None:
            apply_delta(replicas, loads, *self._pending)
        apply_delta(replicas, loads, us, vs, ps)
        self._pending = (us, vs, ps)
        self.published = staging
        return staging

    # -- lifetime ------------------------------------------------------------

    def close(self) -> None:
        """Drop every view and unmap the segment (both sides)."""
        self._degrees = None
        self._loads = None
        self._replicas = None
        self._lane_triples = None
        self._lane_parts = None
        self._lane_scores = None
        self._pending = None
        _close_quietly(self._shm)

    def unlink(self) -> None:
        """Remove the segment name (creator only; idempotent)."""
        if self._owner:
            _unlink_quietly(self._shm)

#!/usr/bin/env python
"""Compare every partitioner family on one dataset.

A minimal version of the paper's Figure 8 sweep over a single graph,
printing replication factor, balance, run-time, and the Section 4.2
memory model side by side.

Run:  python examples/compare_partitioners.py [dataset] [k]
      python examples/compare_partitioners.py IT 32
"""

import sys

from repro.experiments.common import run_partitioner
from repro.graph import datasets
from repro.metrics import format_table

PARTITIONERS = (
    "HEP-100", "HEP-10", "HEP-1",
    "HDRF", "Greedy", "ADWISE", "DBH", "Grid", "Random",
    "NE", "NE++", "SNE", "DNE", "METIS",
)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "OK"
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    graph = datasets.load(dataset)
    print(f"graph: {graph!r}, k={k}; running {len(PARTITIONERS)} partitioners\n")

    rows = []
    for name in PARTITIONERS:
        report = run_partitioner(name, graph, k)
        rows.append(report.row())
        print(f"  {name:<8} done  (RF={report.replication_factor:.3f},"
              f" {report.runtime_s:.2f}s)")

    print()
    print(format_table(rows, title=f"All partitioners on {dataset} (k={k})"))
    best = min(rows, key=lambda r: float(r["RF"]))
    fastest = min(rows, key=lambda r: float(r["time_s"]))
    print(f"\nbest replication factor: {best['partitioner']} ({best['RF']})")
    print(f"fastest                : {fastest['partitioner']} ({fastest['time_s']}s)")


if __name__ == "__main__":
    main()

"""LRU page cache — the resident-set model behind the Table 6 experiment.

The paper restricts NE++'s memory with cgroups and lets the OS swap to
SSD; hard page faults are then exactly the misses of the algorithm's
memory reference string against a fixed-size resident set managed by an
(approximately) LRU policy.  This class is that policy: pages are 4 KiB,
a miss counts as one hard fault, and the cache evicts the least recently
used page when full.

LRU is a stack algorithm, so fault counts are monotone non-increasing in
cache size (the inclusion property) — a property the tests verify and the
Table 6 reproduction relies on.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError

__all__ = ["LruPageCache", "PAGE_BYTES"]

PAGE_BYTES = 4096


class LruPageCache:
    """Fixed-capacity LRU cache over integer page ids."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ConfigurationError(
                f"cache needs at least one page, got {capacity_pages}"
            )
        self.capacity = capacity_pages
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.faults = 0

    def access(self, page: int) -> bool:
        """Touch ``page``; returns ``True`` on a hit, ``False`` on a fault."""
        pages = self._pages
        if page in pages:
            pages.move_to_end(page)
            self.hits += 1
            return True
        self.faults += 1
        if len(pages) >= self.capacity:
            pages.popitem(last=False)
        pages[page] = None
        return False

    def access_range(self, first_page: int, last_page: int) -> int:
        """Touch an inclusive page range; returns the number of faults."""
        before = self.faults
        for page in range(first_page, last_page + 1):
            self.access(page)
        return self.faults - before

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @property
    def total_accesses(self) -> int:
        return self.hits + self.faults

"""Tests for repro.obs: tracer core, summaries, and schema validation.

Covers the span mechanics (nesting, ids, adoption/re-parenting), the
JSONL round trip, the no-op default path instrumented code relies on,
and the profile-record schema the bench/CI pipeline shares.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TraceFormatError
from repro.obs import (
    NULL_TRACER,
    PROFILE_PHASES,
    TRACE_VERSION,
    NullTracer,
    Tracer,
    aggregate_spans,
    format_summary,
    get_tracer,
    phase_breakdown,
    read_trace,
    set_tracer,
    total_counters,
    tracing,
    validate_profile_record,
)
from repro.obs.tracer import _NULL_SPAN, install_collecting_tracer


def _spans(records):
    return [r for r in records if r.get("type") == "span"]


class TestSpanMechanics:
    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer(None)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {r["name"]: r for r in tracer.drain()}
        outer = by_name["outer"]
        assert outer["parent"] is None
        assert by_name["inner"]["parent"] == outer["id"]
        assert by_name["sibling"]["parent"] == outer["id"]
        # Children close before the parent, so they are emitted first.
        assert outer["id"] < by_name["inner"]["id"]

    def test_ids_are_unique(self):
        tracer = Tracer(None)
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [r["id"] for r in tracer.drain()]
        assert len(ids) == len(set(ids))

    def test_counters_accumulate_and_coerce_numpy(self):
        tracer = Tracer(None)
        with tracer.span("s") as span:
            span.add("edges_scanned", 3)
            span.add("edges_scanned", np.int64(4))
            span.add("bytes_piped", np.float32(1.5))
        (record,) = tracer.drain()
        assert record["counters"]["edges_scanned"] == 7
        assert isinstance(record["counters"]["edges_scanned"], int)
        assert record["counters"]["bytes_piped"] == pytest.approx(1.5)

    def test_set_merges_attrs(self):
        tracer = Tracer(None)
        with tracer.span("s", k=8) as span:
            span.set(tau=2.5)
        (record,) = tracer.drain()
        assert record["attrs"] == {"k": 8, "tau": 2.5}

    def test_tracer_add_targets_innermost_span(self):
        tracer = Tracer(None)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.add("edges_scanned", 2)
        by_name = {r["name"]: r for r in tracer.drain()}
        assert by_name["inner"]["counters"] == {"edges_scanned": 2}
        assert by_name["outer"]["counters"] == {}

    def test_tracer_add_outside_spans_lands_in_summary(self):
        tracer = Tracer(None)
        tracer.add("stray", 5)
        assert tracer.summary()["counters"] == {"stray": 5}

    def test_error_inside_span_is_recorded_and_propagates(self):
        tracer = Tracer(None)
        with pytest.raises(ValueError):
            with tracer.span("s"):
                raise ValueError("boom")
        (record,) = tracer.drain()
        assert record["attrs"]["error"] == "ValueError"

    def test_event_is_zero_duration_span_with_counters(self):
        tracer = Tracer(None)
        tracer.event("source_read", counters={"chunks": 3}, source="x")
        (record,) = tracer.drain()
        assert record["name"] == "source_read"
        assert record["counters"] == {"chunks": 3}
        assert record["attrs"]["source"] == "x"

    def test_duration_is_positive(self):
        tracer = Tracer(None)
        with tracer.span("s"):
            sum(range(1000))
        (record,) = tracer.drain()
        assert record["dur_s"] >= 0.0
        assert record["start"] > 0.0


class TestAdoption:
    def test_adopt_renumbers_and_reparents(self):
        worker = Tracer(None)
        with worker.span("worker_stream") as span:
            span.add("busy_s", 0.5)
            with worker.span("child"):
                pass
        shipped = worker.drain()

        coord = Tracer(None)
        with coord.span("pool_run"):
            adopted = coord.adopt(shipped, worker=1)
        assert adopted == 2
        by_name = {r["name"]: r for r in coord.drain()}
        pool = by_name["pool_run"]
        root = by_name["worker_stream"]
        assert root["parent"] == pool["id"]
        assert root["attrs"]["worker"] == 1
        assert by_name["child"]["parent"] == root["id"]
        ids = {r["id"] for r in by_name.values()}
        assert len(ids) == 3

    def test_adopt_without_open_span_keeps_roots_parentless(self):
        worker = Tracer(None)
        with worker.span("worker_count"):
            pass
        coord = Tracer(None)
        coord.adopt(worker.drain())
        (record,) = coord.drain()
        assert record["parent"] is None

    def test_adopt_empty_is_noop(self):
        tracer = Tracer(None)
        assert tracer.adopt([]) == 0
        assert tracer.num_spans == 0

    def test_adopted_spans_count_in_summary(self):
        worker = Tracer(None)
        with worker.span("worker_stream") as span:
            span.add("edges_scanned", 9)
        coord = Tracer(None)
        coord.adopt(worker.drain())
        summary = coord.summary()
        assert summary["spans"] == 1
        assert summary["counters"]["edges_scanned"] == 9


class TestNoOpPath:
    def test_default_global_tracer_is_null(self):
        assert isinstance(get_tracer(), NullTracer)
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_span_is_one_shared_object(self):
        a = NULL_TRACER.span("x", k=1)
        b = NULL_TRACER.span("y")
        assert a is b is _NULL_SPAN
        with a as span:
            span.add("c", 1)
            span.set(z=2)

    def test_null_tracer_records_nothing(self):
        NULL_TRACER.event("e", counters={"c": 1})
        NULL_TRACER.adopt([{"id": 1, "parent": None}])
        assert NULL_TRACER.drain() == []
        assert NULL_TRACER.num_spans == 0
        assert NULL_TRACER.close() == {}

    def test_install_collecting_tracer_modes(self):
        previous = get_tracer()
        try:
            tracer = install_collecting_tracer(True)
            assert isinstance(tracer, Tracer)
            assert tracer.path is None
            assert get_tracer() is tracer
            assert install_collecting_tracer(False) is NULL_TRACER
            assert get_tracer() is NULL_TRACER
        finally:
            set_tracer(previous)


class TestJsonlRoundTrip:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with tracing(path) as tracer:
            with tracer.span("partition", k=8):
                with tracer.span("count_pass") as span:
                    span.add("edges_scanned", 100)
        records = read_trace(path)
        header = records[0]
        assert header["type"] == "trace"
        assert header["version"] == TRACE_VERSION
        assert header["memory"] is None
        assert [r["name"] for r in _spans(records)] == [
            "count_pass", "partition",
        ]
        assert records[-1]["type"] == "summary"
        assert records[-1]["spans"] == 2
        assert records[-1]["counters"] == {"edges_scanned": 100}

    def test_numpy_attrs_serialize(self, tmp_path):
        path = tmp_path / "np.trace.jsonl"
        with tracing(path) as tracer:
            with tracer.span("s", n=np.int64(5), p=tmp_path) as span:
                span.add("c", np.uint32(2))
        (span_record,) = _spans(read_trace(path))
        assert span_record["attrs"]["n"] == 5
        assert span_record["attrs"]["p"] == str(tmp_path)
        assert span_record["counters"]["c"] == 2

    @settings(max_examples=20)
    @given(
        names=st.lists(
            st.text(min_size=1, max_size=12), min_size=1, max_size=6
        ),
        counters=st.dictionaries(
            st.sampled_from(["edges", "bytes", "frames"]),
            st.integers(min_value=0, max_value=2**40),
            max_size=3,
        ),
    )
    def test_round_trip_property(self, tmp_path_factory, names, counters):
        """Arbitrary span names/counters survive the JSONL round trip."""
        path = tmp_path_factory.mktemp("rt") / "t.jsonl"
        with tracing(path) as tracer:
            for name in names:
                with tracer.span(name) as span:
                    for key, value in counters.items():
                        span.add(key, value)
        spans = _spans(read_trace(path))
        assert [s["name"] for s in spans] == names
        for span in spans:
            assert span["counters"] == counters

    def test_tracing_restores_previous_tracer_on_error(self, tmp_path):
        before = get_tracer()
        with pytest.raises(RuntimeError):
            with tracing(tmp_path / "err.jsonl"):
                raise RuntimeError("boom")
        assert get_tracer() is before
        # The file is still closed and well formed.
        records = read_trace(tmp_path / "err.jsonl")
        assert records[-1]["type"] == "summary"

    def test_read_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        with pytest.raises(TraceFormatError):
            read_trace(bad)

    def test_read_trace_rejects_missing_header(self, tmp_path):
        bad = tmp_path / "headless.jsonl"
        bad.write_text('{"type": "span", "name": "x"}\n', encoding="utf-8")
        with pytest.raises(TraceFormatError):
            read_trace(bad)

    def test_read_trace_rejects_non_object_records(self, tmp_path):
        bad = tmp_path / "list.jsonl"
        bad.write_text("[1, 2]\n", encoding="utf-8")
        with pytest.raises(TraceFormatError):
            read_trace(bad)

    def test_read_trace_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            read_trace(tmp_path / "absent.jsonl")


class TestMemoryProbes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer(None, memory="vibes")

    @pytest.mark.parametrize("mode", ["tracemalloc", "rss"])
    def test_mode_records_delta(self, tmp_path, mode):
        path = tmp_path / f"{mode}.jsonl"
        with tracing(path, memory=mode) as tracer:
            with tracer.span("alloc"):
                blob = np.zeros(1 << 16, dtype=np.uint8)
                del blob
        records = read_trace(path)
        assert records[0]["memory"] == mode
        (span,) = _spans(records)
        assert "mem_delta_bytes" in span
        assert isinstance(span["mem_delta_bytes"], int)

    def test_no_probe_omits_field(self):
        tracer = Tracer(None)
        with tracer.span("s"):
            pass
        (record,) = tracer.drain()
        assert "mem_delta_bytes" not in record


class TestSummaries:
    def _toy_trace(self):
        tracer = Tracer(None)
        with tracer.span("partition"):
            with tracer.span("count_pass") as span:
                span.add("edges_scanned", 10)
            with tracer.span("count_pass") as span:
                span.add("edges_scanned", 5)
        header = {"type": "trace", "version": TRACE_VERSION, "memory": None}
        return [header, *tracer.drain()]

    def test_aggregate_spans(self):
        rollup = aggregate_spans(self._toy_trace())
        assert rollup["count_pass"]["count"] == 2
        assert rollup["partition"]["count"] == 1
        assert rollup["count_pass"]["mean_s"] == pytest.approx(
            rollup["count_pass"]["total_s"] / 2
        )

    def test_total_counters(self):
        assert total_counters(self._toy_trace()) == {"edges_scanned": 15}

    def test_format_summary_mentions_key_content(self):
        text = format_summary(self._toy_trace())
        assert "count_pass" in text
        assert "edges_scanned" in text
        assert "attributed" in text
        for phase in PROFILE_PHASES:
            assert phase in text

    def test_phase_breakdown_attributes_pool_counters(self):
        spans = [
            {"type": "span", "id": 1, "parent": None, "name": "partition",
             "dur_s": 10.0, "counters": {}},
            {"type": "span", "id": 2, "parent": 1, "name": "pool_spawn",
             "dur_s": 1.0, "counters": {}},
            {"type": "span", "id": 3, "parent": 1, "name": "pool_run",
             "dur_s": 6.0,
             "counters": {"send_s": 1.0, "merge_s": 0.5, "encode_s": 0.5,
                          "recv_wait_s": 4.0}},
            {"type": "span", "id": 4, "parent": 3, "name": "worker_stream",
             "dur_s": 4.0,
             "counters": {"busy_s": 2.0, "encode_s": 1.0, "send_s": 1.0}},
            {"type": "span", "id": 5, "parent": 1, "name": "phase_one",
             "dur_s": 2.0, "counters": {}},
        ]
        out = phase_breakdown(spans)
        assert out["wall_s"] == pytest.approx(10.0)
        seconds = out["seconds"]
        assert seconds["spawn"] == pytest.approx(1.0)
        assert seconds["merge"] == pytest.approx(0.5)
        # recv_wait 4.0 apportioned 2:1:1 over busy/encode/send.
        assert seconds["compute"] == pytest.approx(2.0 + 2.0)
        assert seconds["pickle"] == pytest.approx(0.5 + 1.0)
        assert seconds["pipe"] == pytest.approx(1.0 + 1.0)
        assert out["attributed"] == pytest.approx(0.9)
        assert out["fractions"]["other"] == pytest.approx(0.1)

    def test_phase_breakdown_recv_wait_defaults_to_pipe(self):
        spans = [
            {"type": "span", "id": 1, "parent": None, "name": "pool_run",
             "dur_s": 2.0, "counters": {"recv_wait_s": 2.0}},
        ]
        out = phase_breakdown(spans)
        assert out["seconds"]["pipe"] == pytest.approx(2.0)

    def test_phase_breakdown_subtracts_nested_stages(self):
        spans = [
            {"type": "span", "id": 1, "parent": None, "name": "stream_pass",
             "dur_s": 5.0, "counters": {}},
            {"type": "span", "id": 2, "parent": 1, "name": "split_spill",
             "dur_s": 2.0, "counters": {}},
            {"type": "span", "id": 3, "parent": 1, "name": "pool_run",
             "dur_s": 1.0, "counters": {}},
        ]
        out = phase_breakdown(spans, wall_s=5.0)
        # stream_pass contributes 5 - 2 - 1; split_spill contributes 2.
        assert out["seconds"]["compute"] == pytest.approx(4.0)

    def test_phase_breakdown_empty_trace(self):
        out = phase_breakdown([])
        assert out["wall_s"] == 0.0
        assert out["attributed"] == 0.0


class TestProfileSchema:
    def _record(self):
        return {
            "bench": "profile",
            "graph": "WI",
            "edges": 1000,
            "k": 8,
            "cpu_count": 2,
            "rows": [
                {
                    "workers": 2,
                    "wall_s": 1.5,
                    "phases": {
                        "spawn": 0.1, "pickle": 0.1, "pipe": 0.2,
                        "compute": 0.5, "merge": 0.05, "other": 0.05,
                    },
                    "attributed": 0.95,
                },
            ],
        }

    def test_valid_record_passes(self):
        validate_profile_record(self._record())

    @pytest.mark.parametrize("mutate", [
        lambda r: r.update(bench="speed"),
        lambda r: r.pop("cpu_count"),
        lambda r: r.update(cpu_count=0),
        lambda r: r.update(edges=-1),
        lambda r: r.update(rows=[]),
        lambda r: r["rows"][0].pop("phases"),
        lambda r: r["rows"][0].update(workers=0),
        lambda r: r["rows"][0].update(wall_s=0),
        lambda r: r["rows"][0]["phases"].pop("compute"),
        lambda r: r["rows"][0]["phases"].update(pipe=-0.1),
        lambda r: r["rows"][0].update(attributed=2.0),
    ])
    def test_invalid_records_rejected(self, mutate):
        record = self._record()
        mutate(record)
        with pytest.raises(TraceFormatError):
            validate_profile_record(record)

    def test_non_dict_rejected(self):
        with pytest.raises(TraceFormatError):
            validate_profile_record([])


def test_read_trace_rejects_binary_file(tmp_path):
    """A non-UTF-8 file is a format error, not an unhandled traceback."""
    bad = tmp_path / "binary.bin"
    bad.write_bytes(bytes(range(256)))
    with pytest.raises(TraceFormatError):
        read_trace(bad)

"""The runtime layer: declarative jobs, explicit plans, pluggable executors.

``repro.runtime`` unifies the four legacy drivers (streaming
baselines, out-of-core HEP, and their multi-worker variants) behind
one path::

    JobSpec  --plan_job-->  Plan  --run_job + Executor-->  PartitionResult

* :class:`~repro.runtime.spec.JobSpec` — a frozen, canonically
  serializable job description with a stable content hash,
* :func:`~repro.runtime.plan.plan_job` — lowers a spec to an explicit
  stage DAG over the stage registry,
* :mod:`~repro.runtime.executor` — in-process vs worker-pool
  strategies for the passes that have both forms,
* :func:`~repro.runtime.api.run_job` — runs the plan (or serves the
  result from a content-addressed
  :class:`~repro.runtime.store.ArtifactStore` without recomputing),
* :mod:`~repro.runtime.registry` — the decorator-based streaming
  algorithm registry the adapters register into.

The legacy driver classes remain as thin shims that build a spec and
delegate here; the equivalence and Hypothesis suites pin the shims
bit-identical to their pre-runtime behavior.
"""

from repro.runtime.api import run_job, validate_spec
from repro.runtime.executor import (
    Executor,
    InProcessExecutor,
    PoolExecutor,
    select_executor,
)
from repro.runtime.plan import (
    PIPELINES,
    Plan,
    STAGE_REGISTRY,
    Stage,
    pipeline_kind,
    plan_job,
    register_stage,
)
from repro.runtime.registry import (
    AlgorithmInfo,
    AlgorithmRegistryView,
    algorithm_catalog,
    algorithm_info,
    algorithm_names,
    algorithm_params,
    create_algorithm,
    register_streaming_algorithm,
    registered_algorithm_name,
)
from repro.runtime.result import PartitionResult
from repro.runtime.spec import (
    SPEC_VERSION,
    InputSpec,
    JobSpec,
    make_job,
    spec_fields,
)
from repro.runtime.store import ArtifactStore, input_digest

__all__ = [
    "AlgorithmInfo",
    "AlgorithmRegistryView",
    "ArtifactStore",
    "Executor",
    "InProcessExecutor",
    "InputSpec",
    "JobSpec",
    "PIPELINES",
    "PartitionResult",
    "Plan",
    "PoolExecutor",
    "SPEC_VERSION",
    "STAGE_REGISTRY",
    "Stage",
    "algorithm_catalog",
    "algorithm_info",
    "algorithm_names",
    "algorithm_params",
    "create_algorithm",
    "input_digest",
    "make_job",
    "pipeline_kind",
    "plan_job",
    "register_stage",
    "register_streaming_algorithm",
    "registered_algorithm_name",
    "run_job",
    "select_executor",
    "spec_fields",
    "validate_spec",
]

"""Hybrid hypergraph partitioning — the paper's future-work extension.

The HEP recipe, lifted pin-for-pin to hypergraphs:

1. **Degree threshold.** Vertices with more than ``tau * mean`` incident
   hyperedges are *high-degree*.  Hyperedges whose pins are **all**
   high-degree (the h2h analogue) are diverted to the streaming phase.
2. **In-memory phase** — HYPE-style neighborhood expansion: a partition
   grows by repeatedly absorbing the frontier hyperedge with the fewest
   *external pins* (pins outside the partition's vertex region), which
   is exactly NE's min-``d_ext`` rule with hyperedges in place of
   vertices-to-core.
3. **Informed streaming phase** — remaining hyperedges stream through a
   min-max scorer (Alistarh et al.): place each hyperedge on the open
   partition already covering most of its pins, informed by the vertex
   cover the in-memory phase built.

``MinMaxStreamingHypergraphPartitioner`` is the pure-streaming baseline
(the analogue of standalone HDRF).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import ConfigurationError
from repro.hypergraph.container import Hypergraph

__all__ = [
    "HybridHypergraphPartitioner",
    "MinMaxStreamingHypergraphPartitioner",
    "split_hyperedges",
]


def split_hyperedges(hypergraph: Hypergraph, tau: float) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(high_vertex_mask, streaming_hyperedge_mask)``.

    A hyperedge streams iff every pin is high-degree — the direct
    analogue of the paper's ``E_h2h``.
    """
    if tau <= 0:
        raise ConfigurationError(f"tau must be positive, got {tau}")
    degrees = hypergraph.vertex_degrees
    high = degrees > tau * hypergraph.mean_vertex_degree
    if hypergraph.num_hyperedges == 0:
        return high, np.zeros(0, dtype=bool)
    # Segmented all() over each hyperedge's pins.
    high_per_pin = high[hypergraph.pins]
    all_high = np.bitwise_and.reduceat(high_per_pin, hypergraph.eptr[:-1])
    return high, all_high


class MinMaxStreamingHypergraphPartitioner:
    """Streaming min-max: maximize pin overlap, subject to capacity."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self.name = "MinMaxStream"

    def partition(self, hypergraph: Hypergraph, k: int) -> np.ndarray:
        if k < 2:
            raise ConfigurationError(f"k must be >= 2, got {k}")
        parts = np.full(hypergraph.num_hyperedges, -1, dtype=np.int32)
        cover = np.zeros((k, hypergraph.num_vertices), dtype=bool)
        loads = np.zeros(k, dtype=np.int64)
        capacity = max(1, int(np.ceil(self.alpha * hypergraph.num_hyperedges / k)))
        _stream(hypergraph, np.arange(hypergraph.num_hyperedges), parts, cover,
                loads, capacity)
        return parts


def _stream(
    hypergraph: Hypergraph,
    hyperedge_ids: np.ndarray,
    parts: np.ndarray,
    cover: np.ndarray,
    loads: np.ndarray,
    capacity: int,
) -> None:
    """Min-max scoring pass shared by the baseline and the hybrid phase 2."""
    for e in hyperedge_ids.tolist():
        pins = hypergraph.hyperedge(e)
        overlap = cover[:, pins].sum(axis=1).astype(np.float64)
        # Load tie-break, hard capacity mask.
        score = overlap - loads / max(capacity, 1)
        score[loads >= capacity] = -np.inf
        p = int(np.argmax(score))
        if score[p] == -np.inf:
            p = int(np.argmin(loads))  # relax: report via alpha
        parts[e] = p
        cover[p, pins] = True
        loads[p] += 1


class HybridHypergraphPartitioner:
    """HEP's two-phase design on hypergraphs (paper Section 7 outlook)."""

    def __init__(self, tau: float = 10.0, alpha: float = 1.0) -> None:
        if tau <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau}")
        self.tau = tau
        self.alpha = alpha
        self.name = f"HybridHG-{tau:g}"
        self.last_streaming_share: float | None = None

    def partition(self, hypergraph: Hypergraph, k: int) -> np.ndarray:
        if k < 2:
            raise ConfigurationError(f"k must be >= 2, got {k}")
        m = hypergraph.num_hyperedges
        high, streaming_mask = split_hyperedges(hypergraph, self.tau)
        self.last_streaming_share = float(streaming_mask.mean()) if m else 0.0

        parts = np.full(m, -1, dtype=np.int32)
        cover = np.zeros((k, hypergraph.num_vertices), dtype=bool)
        loads = np.zeros(k, dtype=np.int64)
        inmemory_ids = np.flatnonzero(~streaming_mask)
        capacity_inmem = max(1, int(np.ceil(inmemory_ids.size / k)))
        self._expand_inmemory(
            hypergraph, inmemory_ids, parts, cover, loads, capacity_inmem, k
        )
        # Informed streaming over the all-high hyperedges.
        stream_ids = np.flatnonzero(streaming_mask)
        capacity_total = max(
            int(np.ceil(self.alpha * m / k)), int(loads.max()) + 1
        )
        _stream(hypergraph, stream_ids, parts, cover, loads, capacity_total)
        return parts

    def _expand_inmemory(
        self,
        hypergraph: Hypergraph,
        hyperedge_ids: np.ndarray,
        parts: np.ndarray,
        cover: np.ndarray,
        loads: np.ndarray,
        capacity: int,
        k: int,
    ) -> None:
        """Neighborhood expansion: per partition, repeatedly absorb the
        frontier hyperedge with the fewest external pins."""
        eligible = np.zeros(hypergraph.num_hyperedges, dtype=bool)
        eligible[hyperedge_ids] = True
        assigned = ~eligible  # streaming hyperedges are off-limits here
        seed_cursor = 0
        order = hyperedge_ids  # sequential seed scan, as in NE++

        for p in range(k - 1):
            region = cover[p]
            # Lazy min-heap of (external pin count, hyperedge id).
            frontier: list[tuple[int, int]] = []

            def external(e: int) -> int:
                pins = hypergraph.hyperedge(e)
                return int((~region[pins]).sum())

            def absorb(e: int) -> None:
                pins = hypergraph.hyperedge(e)
                parts[e] = p
                assigned[e] = True
                loads[p] += 1
                fresh = pins[~region[pins]]
                region[pins] = True
                # External counts only ever decrease, and every decrease
                # (a pin joining the region) re-pushes the affected
                # hyperedges with their updated count — so the heap's
                # minimum key is always current and accept-on-pop is exact.
                for pin in fresh.tolist():
                    for nxt in hypergraph.incident_hyperedges(pin).tolist():
                        if not assigned[nxt]:
                            heapq.heappush(frontier, (external(nxt), nxt))

            while loads[p] < capacity:
                e = -1
                while frontier:
                    _ext, cand = heapq.heappop(frontier)
                    if not assigned[cand]:
                        e = cand
                        break
                if e < 0:
                    # Seed scan (sequential, skip-once like NE++).
                    while seed_cursor < order.size and assigned[order[seed_cursor]]:
                        seed_cursor += 1
                    if seed_cursor >= order.size:
                        break
                    e = int(order[seed_cursor])
                    seed_cursor += 1
                absorb(e)
            if seed_cursor >= order.size and not frontier:
                break
        # Last partition: sweep every remaining in-memory hyperedge.
        p = k - 1
        for e in hyperedge_ids.tolist():
            if not assigned[e]:
                pins = hypergraph.hyperedge(e)
                parts[e] = p
                assigned[e] = True
                loads[p] += 1
                cover[p, pins] = True

"""Bench: regenerate Figure 9 (HEP vs simple hybrid, Section 5.4)."""

from repro.experiments import figure9


def bench_figure9_simple_hybrid(benchmark, record_experiment):
    result = benchmark.pedantic(figure9.run, rounds=1, iterations=1)
    record_experiment(result)
    assert result.rows
    # At the streaming-heavy end HEP's informed HDRF must clearly beat the
    # baseline's random streaming.
    low_tau = [r for r in result.rows if float(r["tau"]) == 1.0]
    assert low_tau
    assert all(float(r["norm_RF(baseline/HEP)"]) > 1.1 for r in low_tau), low_tau

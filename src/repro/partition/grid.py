"""Grid: 2-D constrained hashing (GraphBuilder's stateless partitioner).

Jain et al. (GRADES'13).  Partitions are arranged in an ``r x c`` grid.
Every vertex hashes to a home cell; its *shard candidate set* is the home
row plus home column.  An edge may be placed on any cell in the
intersection of its endpoints' candidate sets — we take the pair of
crossing cells and keep the one with the lower current load.  This bounds
the replication factor of any vertex by ``r + c - 1`` while staying
stateless apart from load counters.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import Graph
from repro.partition.base import PartitionAssignment, Partitioner, capacity_bound
from repro.partition.dbh import hash_vertices, _repair_overflow

__all__ = ["GridPartitioner", "grid_shape"]


def grid_shape(k: int) -> tuple[int, int]:
    """Most-square factorization ``r * c = k`` (``r <= c``)."""
    r = int(np.sqrt(k))
    while r > 1 and k % r != 0:
        r -= 1
    return r, k // r


class GridPartitioner(Partitioner):
    """2-D hash partitioning baseline (Table 1's stateless ``Θ(|E|)`` row)."""

    def __init__(self, alpha: float = 1.0, salt: int = 0) -> None:
        self.alpha = alpha
        self.salt = salt
        self.name = "Grid"

    def partition(self, graph: Graph, k: int) -> PartitionAssignment:
        self._require_k(graph, k)
        rows, cols = grid_shape(k)
        edges = graph.edges
        u, v = edges[:, 0], edges[:, 1]
        hu = hash_vertices(u, self.salt)
        hv = hash_vertices(v, self.salt)
        row_u = (hu % np.uint64(rows)).astype(np.int64)
        col_u = ((hu >> np.uint64(16)) % np.uint64(cols)).astype(np.int64)
        row_v = (hv % np.uint64(rows)).astype(np.int64)
        col_v = ((hv >> np.uint64(16)) % np.uint64(cols)).astype(np.int64)
        # The two crossing cells of the candidate sets.
        cell_a = row_u * cols + col_v
        cell_b = row_v * cols + col_u

        # Greedy load tie-break between the two candidates, in stream order.
        parts = np.empty(graph.num_edges, dtype=np.int32)
        loads = np.zeros(k, dtype=np.int64)
        a_list = cell_a.tolist()
        b_list = cell_b.tolist()
        for e in range(graph.num_edges):
            a, b = a_list[e], b_list[e]
            p = a if loads[a] <= loads[b] else b
            parts[e] = p
            loads[p] += 1

        capacity = capacity_bound(graph.num_edges, k, self.alpha)
        parts = _repair_overflow(parts, k, capacity)
        return PartitionAssignment(graph, k, parts)

#!/usr/bin/env python
"""End-to-end distributed processing: why partitioning quality matters.

Reproduces the workflow behind the paper's Table 4 on the Twitter
stand-in: partition with a cheap hash (DBH) vs HEP, then run PageRank,
BFS and Connected Components on the simulated 32-machine cluster and
compare total cost (partitioning + processing).

Run:  python examples/distributed_processing.py
"""

import time

from repro import DbhPartitioner, HepPartitioner, datasets, replication_factor
from repro.processing import VertexCutEngine, bfs, connected_components, pagerank


def evaluate(name: str, partitioner, graph, k: int) -> dict:
    start = time.perf_counter()
    assignment = partitioner.partition(graph, k)
    partition_time = time.perf_counter() - start
    engine = VertexCutEngine(assignment)
    return {
        "partitioner": name,
        "partition_s": partition_time,
        "RF": replication_factor(assignment),
        "PageRank_s": pagerank(engine, iterations=100).sim_seconds,
        "BFS_s": bfs(engine, num_seeds=10, seed=7).sim_seconds,
        "CC_s": connected_components(engine).sim_seconds,
    }


def main() -> None:
    graph = datasets.load("TW")
    k = 32
    print(f"graph: {graph!r}, k={k}\n")

    rows = [
        evaluate("DBH", DbhPartitioner(), graph, k),
        evaluate("HEP-10", HepPartitioner(tau=10.0), graph, k),
    ]
    header = f"{'partitioner':>12} | {'part_s':>7} | {'RF':>5} | " \
             f"{'PageRank_s':>10} | {'BFS_s':>7} | {'CC_s':>6}"
    print(header)
    print("-" * len(header))
    for r in rows:
        print(
            f"{r['partitioner']:>12} | {r['partition_s']:>7.2f} |"
            f" {r['RF']:>5.2f} | {r['PageRank_s']:>10.1f} |"
            f" {r['BFS_s']:>7.1f} | {r['CC_s']:>6.1f}"
        )

    dbh, hep = rows
    print("\nreading the numbers (paper Section 5.3's conclusions):")
    speedup = dbh["PageRank_s"] / hep["PageRank_s"]
    print(f"- long jobs: HEP's lower RF makes PageRank {speedup:.2f}x faster;"
          " quality partitioning pays for itself")
    total_dbh = dbh["partition_s"] + dbh["CC_s"]
    total_hep = hep["partition_s"] + hep["CC_s"]
    winner = "DBH" if total_dbh < total_hep else "HEP-10"
    print(f"- short jobs: partition+CC total favors {winner}; for quick"
          " one-shot jobs cheap hashing can win overall")


if __name__ == "__main__":
    main()
